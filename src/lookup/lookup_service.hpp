// Peer-lookup abstraction (paper Section 4.2, footnote 4).
//
// DAC_p2p only needs one primitive from the lookup layer: "give me M
// randomly selected candidate supplying peers, with their classes". The
// paper cites both a Napster-style central directory and Chord; we provide
// both behind this interface.
#pragma once

#include <cstddef>
#include <vector>

#include "core/ids.hpp"
#include "core/peer_class.hpp"
#include "util/rng.hpp"

namespace p2ps::lookup {

/// What a requester learns about each candidate before probing it.
struct CandidateInfo {
  core::PeerId id;
  core::PeerClass cls;
  friend bool operator==(const CandidateInfo&, const CandidateInfo&) = default;
};

class LookupService {
 public:
  virtual ~LookupService() = default;

  /// Announces a new supplying peer (a seed, or a requester whose session
  /// completed). Ids must be unique among registered suppliers.
  virtual void register_supplier(core::PeerId id, core::PeerClass cls) = 0;

  /// Removes a supplying peer (e.g. departure/churn).
  virtual void deregister_supplier(core::PeerId id) = 0;

  [[nodiscard]] virtual bool contains(core::PeerId id) const = 0;
  [[nodiscard]] virtual std::size_t supplier_count() const = 0;

  /// Clears `out` and fills it with up to `m` distinct random candidates,
  /// never including `exclude`. Yields fewer when fewer suppliers are
  /// registered. This is the primitive the engine's hot path calls with a
  /// reused scratch buffer, so implementations should avoid allocating.
  virtual void candidates_into(std::vector<CandidateInfo>& out, std::size_t m,
                               util::Rng& rng,
                               core::PeerId exclude = core::PeerId::invalid()) = 0;

  /// Convenience wrapper returning a fresh vector (tests, examples).
  [[nodiscard]] std::vector<CandidateInfo> candidates(
      std::size_t m, util::Rng& rng,
      core::PeerId exclude = core::PeerId::invalid()) {
    std::vector<CandidateInfo> out;
    candidates_into(out, m, rng, exclude);
    return out;
  }
};

}  // namespace p2ps::lookup
