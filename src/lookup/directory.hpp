// Napster-style centralized directory (paper footnote 4, first option).
//
// O(1) register/deregister via swap-remove, O(M) uniform sampling without
// replacement. This is the lookup service the paper's evaluation assumes.
// The id -> slot index is a dense direct-mapped table rather than a hash
// map: the engine's peer ids are small consecutive integers, and the
// directory sits on the admission hot path (one lookup per probe round),
// so memory is O(max id) in exchange for hash-free access.
#pragma once

#include <vector>

#include "lookup/lookup_service.hpp"

namespace p2ps::lookup {

class DirectoryService final : public LookupService {
 public:
  void register_supplier(core::PeerId id, core::PeerClass cls) override;
  void deregister_supplier(core::PeerId id) override;
  [[nodiscard]] bool contains(core::PeerId id) const override;
  [[nodiscard]] std::size_t supplier_count() const override;
  void candidates_into(std::vector<CandidateInfo>& out, std::size_t m,
                       util::Rng& rng, core::PeerId exclude) override;

  /// The class recorded for a supplier (test/metrics helper).
  [[nodiscard]] core::PeerClass class_of(core::PeerId id) const;

 private:
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  /// entries_ slot of `id`, or kNoSlot when not registered.
  [[nodiscard]] std::size_t slot_of(core::PeerId id) const {
    const auto v = static_cast<std::size_t>(id.value());
    return v < slot_by_id_.size() ? slot_by_id_[v] : kNoSlot;
  }

  std::vector<CandidateInfo> entries_;
  std::vector<std::size_t> slot_by_id_;  // id.value() -> entries_ slot
  std::vector<std::size_t> scratch_picks_;  // reused by candidates_into
};

}  // namespace p2ps::lookup
