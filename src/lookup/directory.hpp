// Napster-style centralized directory (paper footnote 4, first option).
//
// O(1) register/deregister via swap-remove, O(M) uniform sampling without
// replacement. This is the lookup service the paper's evaluation assumes.
#pragma once

#include <unordered_map>
#include <vector>

#include "lookup/lookup_service.hpp"

namespace p2ps::lookup {

class DirectoryService final : public LookupService {
 public:
  void register_supplier(core::PeerId id, core::PeerClass cls) override;
  void deregister_supplier(core::PeerId id) override;
  [[nodiscard]] bool contains(core::PeerId id) const override;
  [[nodiscard]] std::size_t supplier_count() const override;
  [[nodiscard]] std::vector<CandidateInfo> candidates(std::size_t m, util::Rng& rng,
                                                      core::PeerId exclude) override;

  /// The class recorded for a supplier (test/metrics helper).
  [[nodiscard]] core::PeerClass class_of(core::PeerId id) const;

 private:
  std::vector<CandidateInfo> entries_;
  std::unordered_map<core::PeerId, std::size_t> index_;  // id -> entries_ slot
};

}  // namespace p2ps::lookup
