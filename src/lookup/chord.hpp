// Chord-style distributed lookup (paper footnote 4, second option).
//
// Peers hash onto a 64-bit identifier ring; each key is owned by its
// successor. Candidate selection draws random keys and resolves their
// owners, which yields a uniform-ish sample weighted by arc length — the
// classic Chord behaviour. Lookups are routed greedily through finger
// tables and the hop counts are recorded, so tests and benchmarks can
// verify the O(log n) routing bound.
//
// Scope note (documented substitution): ring membership is updated
// atomically at register/deregister time — the stabilization/gossip
// protocol that repairs fingers after churn is not simulated, because the
// DES applies membership changes at exact instants. Routing and ownership
// semantics are those of a converged Chord ring.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "lookup/lookup_service.hpp"

namespace p2ps::lookup {

/// Accumulated routing statistics.
struct ChordStats {
  std::uint64_t lookups = 0;
  std::uint64_t total_hops = 0;
  std::uint64_t max_hops = 0;
  [[nodiscard]] double mean_hops() const {
    return lookups == 0 ? 0.0 : static_cast<double>(total_hops) / static_cast<double>(lookups);
  }
};

class ChordLookup final : public LookupService {
 public:
  static constexpr int kBits = 64;

  void register_supplier(core::PeerId id, core::PeerClass cls) override;
  void deregister_supplier(core::PeerId id) override;
  [[nodiscard]] bool contains(core::PeerId id) const override;
  [[nodiscard]] std::size_t supplier_count() const override;
  void candidates_into(std::vector<CandidateInfo>& out, std::size_t m,
                       util::Rng& rng, core::PeerId exclude) override;

  /// Ring position of a peer id (exposed for tests).
  [[nodiscard]] static std::uint64_t ring_position(core::PeerId id);

  /// The node owning `key` (its successor on the ring). Requires a
  /// non-empty ring.
  [[nodiscard]] CandidateInfo owner_of(std::uint64_t key) const;

  /// Routes a lookup for `key` starting from the node owning `from_key`,
  /// using greedy closest-preceding-finger routing; returns the owner and
  /// records the hop count. Requires a non-empty ring.
  CandidateInfo route(std::uint64_t from_key, std::uint64_t key);

  [[nodiscard]] const ChordStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  /// Clockwise distance from `a` to `b` on the 2^64 ring.
  [[nodiscard]] static std::uint64_t clockwise(std::uint64_t a, std::uint64_t b) {
    return b - a;  // wraps mod 2^64 by construction
  }

  /// Finger i of the node at `pos`: owner of pos + 2^i.
  [[nodiscard]] std::uint64_t finger_target(std::uint64_t pos, int i) const {
    return pos + (std::uint64_t{1} << i);
  }

  std::map<std::uint64_t, CandidateInfo> ring_;          // position -> node
  std::unordered_map<core::PeerId, std::uint64_t> pos_;  // id -> position
  ChordStats stats_;
  std::vector<core::PeerId> scratch_seen_;  // reused by candidates_into
};

}  // namespace p2ps::lookup
