// Chord-style distributed lookup (paper footnote 4, second option).
//
// Peers hash onto a 64-bit identifier ring; each key is owned by its
// successor. Candidate selection draws random keys and resolves their
// owners, which yields a uniform-ish sample weighted by arc length — the
// classic Chord behaviour. Lookups are routed greedily through finger
// tables and the hop counts are recorded, so tests and benchmarks can
// verify the O(log n) routing bound.
//
// Representation: the ring is one dense vector of nodes sorted by ring
// position, searched by std::lower_bound — no std::map node allocations,
// no id->position hash map. Every routing step is a binary search over a
// contiguous array (cache-friendly; a 4096-entry ring fits in L2), and
// membership updates are O(n) inserts, which is fine at directory scale
// and far off the routing hot path. The id->node lookup rides the same
// array: a peer's home slot is ring_position(id), and the astronomically
// rare position collision linear-probes upward at register time, so a
// find only has to binary-search home + 0..max_probe_offset_ (0 in any
// realistic run).
//
// Scope note (documented substitution): ring membership is updated
// atomically at register/deregister time — the stabilization/gossip
// protocol that repairs fingers after churn is not simulated, because the
// DES applies membership changes at exact instants. Routing and ownership
// semantics are those of a converged Chord ring.
#pragma once

#include <cstdint>
#include <vector>

#include "lookup/lookup_service.hpp"

namespace p2ps::lookup {

/// Accumulated routing statistics.
struct ChordStats {
  std::uint64_t lookups = 0;
  std::uint64_t total_hops = 0;
  std::uint64_t max_hops = 0;
  [[nodiscard]] double mean_hops() const {
    return lookups == 0 ? 0.0 : static_cast<double>(total_hops) / static_cast<double>(lookups);
  }
};

class ChordLookup final : public LookupService {
 public:
  static constexpr int kBits = 64;

  void register_supplier(core::PeerId id, core::PeerClass cls) override;
  void deregister_supplier(core::PeerId id) override;
  [[nodiscard]] bool contains(core::PeerId id) const override;
  [[nodiscard]] std::size_t supplier_count() const override;
  void candidates_into(std::vector<CandidateInfo>& out, std::size_t m,
                       util::Rng& rng, core::PeerId exclude) override;

  /// Ring position of a peer id (exposed for tests).
  [[nodiscard]] static std::uint64_t ring_position(core::PeerId id);

  /// The node owning `key` (its successor on the ring). Requires a
  /// non-empty ring.
  [[nodiscard]] CandidateInfo owner_of(std::uint64_t key) const;

  /// Routes a lookup for `key` starting from the node owning `from_key`,
  /// using greedy closest-preceding-finger routing; returns the owner and
  /// records the hop count. Requires a non-empty ring.
  CandidateInfo route(std::uint64_t from_key, std::uint64_t key);

  [[nodiscard]] const ChordStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  /// One ring node: its position and the candidate it serves.
  struct Node {
    std::uint64_t pos = 0;
    CandidateInfo info;
  };

  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  /// Clockwise distance from `a` to `b` on the 2^64 ring.
  [[nodiscard]] static std::uint64_t clockwise(std::uint64_t a, std::uint64_t b) {
    return b - a;  // wraps mod 2^64 by construction
  }

  /// Finger i of the node at `pos`: owner of pos + 2^i.
  [[nodiscard]] static std::uint64_t finger_target(std::uint64_t pos, int i) {
    return pos + (std::uint64_t{1} << i);
  }

  /// Index of the first node at position >= key (possibly nodes_.size()).
  [[nodiscard]] std::size_t lower_index(std::uint64_t key) const;
  /// Index of the node owning `key` (its successor, wrapping). Requires a
  /// non-empty ring.
  [[nodiscard]] std::size_t owner_index(std::uint64_t key) const;
  /// Index of the node registered as `id`, or kNpos. Probes the id's home
  /// position plus the collision offsets ever used (normally just home).
  [[nodiscard]] std::size_t find_index(core::PeerId id) const;

  std::vector<Node> nodes_;  // sorted by pos
  /// Largest linear-probe offset any register ever needed (collisions are
  /// astronomically rare, so this stays 0 and find_index is one search).
  std::uint64_t max_probe_offset_ = 0;
  ChordStats stats_;
  std::vector<core::PeerId> scratch_seen_;  // reused by candidates_into
};

}  // namespace p2ps::lookup
