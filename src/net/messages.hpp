// Control-plane message vocabulary of distributed DAC_p2p.
//
// One admission attempt exchanges:
//   requester -> candidate : Probe{requester class}
//   candidate -> requester : ProbeResponse{grant/deny/busy, favored bit, class}
//   requester -> supplier  : StartSession{session id}     (chosen grants)
//   requester -> supplier  : Release{}                    (unused grants)
//   requester -> busy cand.: Reminder{requester class}    (rejected path)
// Grants place a hold on the supplier; holds expire after a timeout so a
// crashed requester cannot pin suppliers forever.
#pragma once

#include <variant>

#include "core/admission/supplier.hpp"
#include "core/ids.hpp"
#include "core/peer_class.hpp"

namespace p2ps::net {

struct Probe {
  core::PeerClass requester_class;
};

struct ProbeResponse {
  core::ProbeReply reply;
  bool favors_requester = false;
  core::PeerClass supplier_class = core::kHighestClass;
};

struct StartSession {
  core::SessionId session;
};

struct Release {};

struct Reminder {
  core::PeerClass requester_class;
};

/// Sent by the session's requester when playback completes; the supplier
/// frees its slot and applies the session-end vector update.
struct EndSession {
  core::SessionId session;
};

using Message =
    std::variant<Probe, ProbeResponse, StartSession, Release, Reminder, EndSession>;

}  // namespace p2ps::net
