// Simulated message transport (legacy per-message-event baseline).
//
// The session-level engine (src/engine) models probes as instantaneous,
// exactly like the paper's evaluation. This transport is the original
// message-level substrate for the *distributed* form of DAC_p2p: unicast
// with configurable latency and loss, one simulator event per message. The
// message-level engines now run on the batched MailboxRouter
// (net/mailbox.hpp), which shares this file's Envelope vocabulary; this
// class remains as the generic-payload transport for tests and as the
// reference for the per-message delivery ordering the router's rule is
// argued against (docs/message_batching.md).
#pragma once

#include <deque>
#include <functional>
#include <utility>

#include "core/ids.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace p2ps::net {

struct TransportConfig {
  util::SimTime min_latency = util::SimTime::millis(20);
  util::SimTime max_latency = util::SimTime::millis(80);
  /// Probability that a message is silently dropped (failure injection).
  double drop_probability = 0.0;
};

/// An envelope delivered to a node's handler.
template <typename Payload>
struct Envelope {
  core::PeerId from;
  core::PeerId to;
  Payload payload;
};

/// Unicast transport over the discrete-event simulator.
///
/// Delivery guarantees: messages to a node are delivered while it stays
/// attached; messages to detached nodes vanish (peer down). Latency is
/// sampled uniformly per message, so reordering between two messages on the
/// same pair is possible — exactly the property the async protocol has to
/// tolerate on a real network.
template <typename Payload>
class Transport {
 public:
  using Handler = std::function<void(const Envelope<Payload>&)>;

  Transport(sim::Simulator& simulator, TransportConfig config, util::Rng rng)
      : simulator_(simulator), config_(config), rng_(rng) {
    P2PS_REQUIRE(config.min_latency >= util::SimTime::zero());
    P2PS_REQUIRE(config.max_latency >= config.min_latency);
    P2PS_REQUIRE(config.drop_probability >= 0.0 && config.drop_probability <= 1.0);
  }

  /// Registers (or replaces) the message handler for `node`. Peer ids must
  /// be small dense integers (the engines' ids are): handlers live in a
  /// direct-mapped table — O(max id) memory for hash-free delivery, the
  /// same trade the directory's id index makes.
  void attach(core::PeerId node, Handler handler) {
    P2PS_REQUIRE(node.valid());
    P2PS_REQUIRE(handler != nullptr);
    const auto index = static_cast<std::size_t>(node.value());
    if (index >= handlers_.size()) handlers_.resize(index + 1);
    handlers_[index] = std::move(handler);
  }

  /// Removes a node; queued messages to it are dropped on delivery.
  void detach(core::PeerId node) {
    if (node.value() < handlers_.size()) {
      handlers_[static_cast<std::size_t>(node.value())] = nullptr;
    }
  }

  [[nodiscard]] bool attached(core::PeerId node) const {
    return node.value() < handlers_.size() &&
           handlers_[static_cast<std::size_t>(node.value())] != nullptr;
  }

  /// Sends `payload` from `from` to `to`. Returns false when the message
  /// was dropped at send time (loss injection); queued otherwise.
  bool send(core::PeerId from, core::PeerId to, Payload payload) {
    P2PS_REQUIRE(from.valid() && to.valid());
    ++sent_;
    if (rng_.bernoulli(config_.drop_probability)) {
      ++dropped_;
      return false;
    }
    const util::SimTime latency = sample_latency();
    simulator_.schedule_after(
        latency, [this, envelope = Envelope<Payload>{from, to, std::move(payload)}] {
          const auto index = static_cast<std::size_t>(envelope.to.value());
          if (index >= handlers_.size() || handlers_[index] == nullptr) {
            ++undeliverable_;
            return;  // receiver down/detached
          }
          ++delivered_;
          handlers_[index](envelope);
        });
    return true;
  }

  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t undeliverable() const { return undeliverable_; }

 private:
  util::SimTime sample_latency() {
    const std::int64_t spread =
        config_.max_latency.as_millis() - config_.min_latency.as_millis();
    if (spread == 0) return config_.min_latency;
    return config_.min_latency +
           util::SimTime::millis(rng_.uniform_int(0, spread));
  }

  sim::Simulator& simulator_;
  TransportConfig config_;
  util::Rng rng_;
  /// Dense by peer id — no hashing. A deque, not a vector: a handler may
  /// attach a previously unseen peer, and growing the table must not
  /// relocate the handler currently executing.
  std::deque<Handler> handlers_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t undeliverable_ = 0;
};

}  // namespace p2ps::net
