#include "net/async_admission.hpp"

#include <algorithm>

#include "core/ots.hpp"
#include "util/assert.hpp"

namespace p2ps::net {

SupplierEndpoint::SupplierEndpoint(core::PeerId self, core::PeerClass own_class,
                                   const Config& config, sim::TimerService& timers,
                                   MessageTransport& transport, util::Rng rng)
    : self_(self),
      config_(config),
      timers_(timers),
      transport_(transport),
      rng_(rng),
      admission_(config.num_classes, own_class, config.differentiated) {
  transport_.attach(self_, [this](const Envelope<Message>& envelope) {
    on_message(envelope);
  });
  arm_idle_timer();
}

SupplierEndpoint::~SupplierEndpoint() {
  clear_hold();
  disarm_idle_timer();
  if (watchdog_timer_.valid()) timers_.cancel(watchdog_timer_);
  transport_.detach(self_);
}

void SupplierEndpoint::arm_idle_timer() {
  arm_idle_timer_at(timers_.now() + config_.t_out);
}

void SupplierEndpoint::arm_idle_timer_at(util::SimTime deadline) {
  if (config_.t_out <= util::SimTime::zero() || !admission_.differentiated() ||
      admission_.vector().fully_relaxed()) {
    disarm_idle_timer();
    return;
  }
  if (timers_.rearm_at(idle_timer_, deadline)) return;
  idle_timer_ = timers_.arm_at(deadline, [this](util::SimTime at) {
    idle_timer_ = sim::TimerId::invalid();
    if (!admission_.busy()) admission_.on_idle_timeout();
    arm_idle_timer_at(at + config_.t_out);  // deadline-anchored chain
  });
}

void SupplierEndpoint::disarm_idle_timer() {
  if (idle_timer_.valid()) {
    timers_.cancel(idle_timer_);
    idle_timer_ = sim::TimerId::invalid();
  }
}

void SupplierEndpoint::clear_hold() {
  if (hold_timer_.valid()) {
    timers_.cancel(hold_timer_);
    hold_timer_ = sim::TimerId::invalid();
  }
}

void SupplierEndpoint::on_message(const Envelope<Message>& envelope) {
  // Deadline-check-on-message-touch: expire every due hold, idle period
  // and watchdog before this message reads or mutates admission state, so
  // all timer strategies answer it identically (docs/timers.md).
  timers_.poll();
  if (const auto* probe = std::get_if<Probe>(&envelope.payload)) {
    ProbeResponse response;
    response.supplier_class = admission_.own_class();
    if (holding()) {
      // A granted-but-uncommitted slot: report busy, but do not count this
      // as a favored-class request turned away — no session is running.
      response.reply = core::ProbeReply::kBusy;
      response.favors_requester =
          admission_.vector().favors(probe->requester_class);
    } else {
      const core::ProbeOutcome outcome =
          admission_.handle_probe(probe->requester_class, rng_);
      response.reply = outcome.reply;
      response.favors_requester = outcome.favors_requester;
      if (outcome.reply == core::ProbeReply::kGranted) {
        // Hold the slot for the requester until commit, release or timeout.
        // Expiry needs no callback work: holding() is deadline-aware.
        hold_timer_ = timers_.arm_after(
            config_.hold_timeout,
            [this](util::SimTime) { hold_timer_ = sim::TimerId::invalid(); });
      }
    }
    transport_.send(self_, envelope.from, response);
    return;
  }

  if (const auto* start = std::get_if<StartSession>(&envelope.payload)) {
    // Commit is only honoured while the hold stands; a late StartSession
    // (after the hold timed out) is refused by simply ignoring it — the
    // requester's own response timeout handles the fallout.
    if (holding()) {
      clear_hold();
      disarm_idle_timer();
      admission_.on_session_start();
      active_session_ = start->session;
      if (config_.session_watchdog > util::SimTime::zero()) {
        watchdog_timer_ =
            timers_.arm_after(config_.session_watchdog, [this](util::SimTime at) {
              watchdog_timer_ = sim::TimerId::invalid();
              // Teardown never arrived: free the slot unilaterally. The
              // idle chain this starts anchors at the watchdog's own
              // deadline, wherever the clock is when it fires.
              if (admission_.busy()) {
                ++watchdog_recoveries_;
                end_session_at(at);
              }
            });
      }
    }
    return;
  }

  if (std::holds_alternative<Release>(envelope.payload)) {
    clear_hold();
    return;
  }

  if (const auto* reminder = std::get_if<Reminder>(&envelope.payload)) {
    // Reminders only make sense while the session that caused the busy
    // answer is still running; stale ones are dropped.
    if (admission_.busy()) {
      admission_.leave_reminder(reminder->requester_class);
    }
    return;
  }

  if (const auto* end = std::get_if<EndSession>(&envelope.payload)) {
    // Only the session we are actually serving may free the slot; stale or
    // misdirected teardowns are ignored.
    if (admission_.busy() && end->session == active_session_) {
      end_session();
    }
    return;
  }
}

void SupplierEndpoint::end_session() { end_session_at(timers_.now()); }

void SupplierEndpoint::end_session_at(util::SimTime at) {
  P2PS_REQUIRE_MSG(admission_.busy(), "no session to end");
  if (watchdog_timer_.valid()) {
    timers_.cancel(watchdog_timer_);
    watchdog_timer_ = sim::TimerId::invalid();
  }
  admission_.on_session_end();
  active_session_ = core::SessionId::invalid();
  arm_idle_timer_at(at + config_.t_out);
}

void SupplierEndpoint::idle_elevate() {
  if (!admission_.busy()) admission_.on_idle_timeout();
}

AsyncAdmissionAttempt::AsyncAdmissionAttempt(core::PeerId self, core::PeerClass own_class,
                                             core::SessionId session,
                                             std::vector<lookup::CandidateInfo> candidates,
                                             const Config& config,
                                             sim::Simulator& simulator,
                                             MessageTransport& transport, Callback done)
    : self_(self),
      own_class_(own_class),
      session_(session),
      config_(config),
      simulator_(simulator),
      transport_(transport),
      done_(std::move(done)) {
  P2PS_REQUIRE(done_ != nullptr);
  candidates_.reserve(candidates.size());
  for (auto& candidate : candidates) {
    P2PS_REQUIRE_MSG(candidate.id != self_, "requester cannot probe itself");
    candidates_.push_back(CandidateState{candidate, std::nullopt});
  }
}

AsyncAdmissionAttempt::~AsyncAdmissionAttempt() {
  if (timeout_event_.valid()) simulator_.cancel(timeout_event_);
  if (started_) transport_.detach(self_);
}

void AsyncAdmissionAttempt::start() {
  P2PS_REQUIRE_MSG(!started_, "attempt already started");
  started_ = true;
  transport_.attach(self_, [this](const Envelope<Message>& envelope) {
    on_message(envelope);
  });
  timeout_event_ = simulator_.schedule_after(config_.response_timeout, [this] {
    timeout_event_ = sim::EventId::invalid();
    conclude();
  });
  for (const auto& candidate : candidates_) {
    transport_.send(self_, candidate.info.id, Probe{own_class_});
  }
  if (candidates_.empty()) conclude();
}

void AsyncAdmissionAttempt::on_message(const Envelope<Message>& envelope) {
  const auto* response = std::get_if<ProbeResponse>(&envelope.payload);
  if (response == nullptr || concluded_) return;

  for (auto& candidate : candidates_) {
    if (candidate.info.id == envelope.from && !candidate.response.has_value()) {
      candidate.response = *response;
      break;
    }
  }
  const bool all_answered =
      std::all_of(candidates_.begin(), candidates_.end(),
                  [](const CandidateState& c) { return c.response.has_value(); });
  if (all_answered) conclude();
}

void AsyncAdmissionAttempt::conclude() {
  if (concluded_) return;
  concluded_ = true;
  if (timeout_event_.valid()) {
    simulator_.cancel(timeout_event_);
    timeout_event_ = sim::EventId::invalid();
  }

  Result result;
  result.session = session_;

  std::vector<std::size_t> granted;       // indices into candidates_
  std::vector<core::PeerClass> granted_classes;
  std::vector<core::BusyCandidate> busy;
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    const auto& candidate = candidates_[i];
    if (!candidate.response.has_value()) continue;  // down / lost message
    ++result.responses;
    switch (candidate.response->reply) {
      case core::ProbeReply::kGranted:
        granted.push_back(i);
        granted_classes.push_back(candidate.info.cls);
        break;
      case core::ProbeReply::kBusy:
        busy.push_back(core::BusyCandidate{i, candidate.info.cls,
                                           candidate.response->favors_requester});
        break;
      case core::ProbeReply::kDenied:
        break;
    }
  }

  core::SelectionResult local_selection;
  core::SelectionResult& selection = config_.selection_scratch != nullptr
                                         ? *config_.selection_scratch
                                         : local_selection;
  const core::SelectionPolicy& policy =
      config_.policy != nullptr ? *config_.policy : core::paper_dac_policy();
  core::SelectionContext selection_context;
  selection_context.requester_class = own_class_;
  selection_context.rng = config_.selection_rng;
  policy.select_into(selection, granted_classes, core::Bandwidth::playback_rate(),
                     selection_context);
  if (selection.success()) {
    std::vector<bool> chosen(granted.size(), false);
    for (std::size_t pick : selection.chosen) chosen[pick] = true;
    std::vector<core::PeerClass> session_classes;
    for (std::size_t g = 0; g < granted.size(); ++g) {
      const auto& info = candidates_[granted[g]].info;
      if (chosen[g]) {
        transport_.send(self_, info.id, StartSession{session_});
        result.suppliers.push_back(info);
        session_classes.push_back(info.cls);
      } else {
        transport_.send(self_, info.id, Release{});
      }
    }
    result.admitted = true;
    result.buffering_delay_dt =
        core::ots_assignment(session_classes).min_buffering_delay_dt();
  } else {
    for (std::size_t g : granted) {
      transport_.send(self_, candidates_[g].info.id, Release{});
    }
    if (config_.reminders_enabled) {
      const auto omega = core::reminder_set(busy, selection.shortfall);
      for (std::size_t index : omega) {
        transport_.send(self_, candidates_[index].info.id, Reminder{own_class_});
        ++result.reminders_left;
      }
    }
  }

  // Callback last: it may destroy this object.
  done_(result);
}

}  // namespace p2ps::net
