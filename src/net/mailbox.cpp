#include "net/mailbox.hpp"

namespace p2ps::net {

std::string_view to_string(TransportMode mode) {
  switch (mode) {
    case TransportMode::kBatched:
      return "batched";
    case TransportMode::kUnbatched:
      return "unbatched";
  }
  P2PS_CHECK_MSG(false, "unreachable transport mode");
  return "";
}

std::optional<TransportMode> parse_transport_mode(std::string_view token) {
  if (token == "batched") return TransportMode::kBatched;
  if (token == "unbatched") return TransportMode::kUnbatched;
  return std::nullopt;
}

}  // namespace p2ps::net
