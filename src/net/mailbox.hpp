// Batched mailbox delivery: per-(destination peer, delivery tick) message
// batching over the discrete-event simulator.
//
// The legacy Transport schedules one simulator event per message — at
// message-level paper scale that is one queue insertion, one heap-boxed
// callback (an Envelope does not fit the simulator's inline callback
// storage) and one dispatch per control message. The MailboxRouter instead
// appends messages bound for the same peer at the same simulator tick to a
// pooled inbox and drains the whole group with a single event whose
// callback is three words (receiver id, tick, group id).
//
// Delivery ordering rule (the subsystem's documented semantics, argued in
// docs/message_batching.md):
//   * all messages for peer P arriving at tick T are delivered
//     contiguously, FIFO in enqueue (send) order;
//   * groups fire at their tick in creation order — the drain event's
//     queue position is fixed when the group's first message is sent.
//
// Batched vs unbatched mode share this rule bit-for-bit; unbatched mode
// differs only in mechanics (one simulator event per message — the group's
// first event drains the whole inbox FIFO, its successors find the group
// already retired and fire empty). A mode flip therefore cannot change any
// simulation output, which is what the byte-parity tests pin down, while
// the event count and peak event list expose exactly the queue traffic
// batching amortizes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "core/ids.hpp"
#include "core/peer_class.hpp"
#include "net/envelope_pool.hpp"
#include "net/latency.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace p2ps::net {

enum class TransportMode {
  kBatched,    ///< one drain event per (peer, tick) group
  kUnbatched,  ///< one event per message, same delivery order (baseline)
};

[[nodiscard]] std::string_view to_string(TransportMode mode);

/// Parses "batched" | "unbatched"; nullopt on anything else.
[[nodiscard]] std::optional<TransportMode> parse_transport_mode(
    std::string_view token);

struct MailboxConfig {
  LatencyModel latency;
  /// Probability that a message is silently dropped (failure injection).
  double drop_probability = 0.0;
  TransportMode mode = TransportMode::kBatched;
};

/// Unicast message router with per-(peer, tick) batched delivery.
///
/// Delivery guarantees match the legacy Transport: messages to a node are
/// delivered while it stays attached; messages to detached nodes vanish.
/// Peer ids must be small dense integers (the engines' ids are) — per-peer
/// state is a direct-mapped table, O(max id) memory for hash-free access,
/// the same trade the directory index makes.
///
/// Reentrancy: handlers may send (including zero-latency sends to a peer
/// whose current tick is mid-drain — they land in a fresh group later the
/// same tick) and may attach/detach *other* peers; a handler must not
/// detach or re-attach the peer it is running for from inside its own
/// invocation (destroying an executing callable). The engines guarantee
/// this by retiring endpoints through the pooled retirement list instead
/// of from handler context.
template <typename Payload>
class MailboxRouter {
 public:
  using Handler = std::function<void(const Envelope<Payload>&)>;

  MailboxRouter(sim::Simulator& simulator, MailboxConfig config, util::Rng rng)
      : simulator_(simulator), config_(config), rng_(rng) {
    config_.latency.validate();
    P2PS_REQUIRE(config.drop_probability >= 0.0 && config.drop_probability <= 1.0);
  }

  /// Registers (or replaces) the message handler for `node`.
  void attach(core::PeerId node, Handler handler) {
    P2PS_REQUIRE(node.valid());
    P2PS_REQUIRE(handler != nullptr);
    mailbox(node).handler = std::move(handler);
  }

  /// Removes a node; queued messages to it are dropped on delivery.
  void detach(core::PeerId node) {
    if (node.value() >= nodes_.size()) return;
    nodes_[static_cast<std::size_t>(node.value())].handler = nullptr;
  }

  [[nodiscard]] bool attached(core::PeerId node) const {
    return node.value() < nodes_.size() &&
           nodes_[static_cast<std::size_t>(node.value())].handler != nullptr;
  }

  /// Records a peer's bandwidth class for the two-class latency model.
  /// Independent of attachment — classes persist across attach/detach.
  void set_peer_class(core::PeerId node, core::PeerClass cls) {
    P2PS_REQUIRE(node.valid());
    mailbox(node).cls = cls;
  }

  /// Sends `payload` from `from` to `to`. Returns false when the message
  /// was dropped at send time (loss injection); queued otherwise.
  bool send(core::PeerId from, core::PeerId to, Payload payload) {
    P2PS_REQUIRE(from.valid() && to.valid());
    ++sent_;
    if (rng_.bernoulli(config_.drop_probability)) {
      ++dropped_;
      return false;
    }
    const util::SimTime tick =
        simulator_.now() +
        config_.latency.sample(class_of(from), class_of(to), rng_);
    Mailbox& box = mailbox(to);
    Group* group = nullptr;
    for (auto& pending : box.pending) {
      if (pending.tick == tick) {
        group = &pending;
        break;
      }
    }
    const bool new_group = group == nullptr;
    if (new_group) {
      box.pending.push_back(Group{tick, next_group_, pool_.acquire()});
      group = &box.pending.back();
      ++next_group_;
    }
    group->inbox.push_back(Envelope<Payload>{from, to, std::move(payload)});
    // Batched: one drain event per group, scheduled at first append — its
    // queue position (and hence the group's order among same-tick events)
    // is fixed here. Unbatched: one event per message; only the first to
    // fire finds the group (matched by id, so a zero-latency regroup at
    // the same tick cannot be drained early by a stale event).
    if (new_group || config_.mode == TransportMode::kUnbatched) {
      ++events_scheduled_;
      const std::uint64_t id = group->id;
      simulator_.schedule_at(tick, [this, to, tick, id] { drain(to, tick, id); });
    }
    return true;
  }

  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t undeliverable() const { return undeliverable_; }

  /// Delivery events scheduled: one per group when batched, one per
  /// message when unbatched — the event traffic batching amortizes.
  [[nodiscard]] std::uint64_t events_scheduled() const { return events_scheduled_; }
  /// Drain events that found their group and delivered it.
  [[nodiscard]] std::uint64_t drains() const { return drains_; }
  /// Largest group ever drained at once.
  [[nodiscard]] std::size_t max_batch() const { return max_batch_; }

  [[nodiscard]] const EnvelopePool<Envelope<Payload>>& pool() const { return pool_; }
  [[nodiscard]] const MailboxConfig& config() const { return config_; }

 private:
  /// One in-flight (peer, tick) batch. `id` is a router-wide sequence
  /// number: drain events capture it so a stale unbatched event can never
  /// drain a group re-created at the same tick.
  struct Group {
    util::SimTime tick;
    std::uint64_t id = 0;
    std::vector<Envelope<Payload>> inbox;
  };

  struct Mailbox {
    Handler handler;  // attached iff non-null
    core::PeerClass cls = core::kHighestClass;
    std::vector<Group> pending;  // few entries: ticks in the latency window
  };

  Mailbox& mailbox(core::PeerId node) {
    const auto index = static_cast<std::size_t>(node.value());
    if (index >= nodes_.size()) nodes_.resize(index + 1);
    return nodes_[index];
  }

  [[nodiscard]] core::PeerClass class_of(core::PeerId node) const {
    return node.value() < nodes_.size()
               ? nodes_[static_cast<std::size_t>(node.value())].cls
               : core::kHighestClass;
  }

  void drain(core::PeerId to, util::SimTime tick, std::uint64_t id) {
    auto& pending = nodes_[static_cast<std::size_t>(to.value())].pending;
    std::size_t slot = pending.size();
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (pending[i].id == id) {
        slot = i;
        break;
      }
    }
    if (slot == pending.size()) return;  // unbatched: group already drained
    P2PS_CHECK(pending[slot].tick == tick);
    auto inbox = std::move(pending[slot].inbox);
    // Swap-remove: order within `pending` carries no meaning (drain order
    // is fixed by the events' queue positions, groups are matched by id).
    pending[slot] = std::move(pending.back());
    pending.pop_back();
    ++drains_;
    if (inbox.size() > max_batch_) max_batch_ = inbox.size();
    for (const auto& envelope : inbox) {
      // Look the mailbox up afresh per message: an earlier handler in this
      // batch may detach the receiver or grow the node table. (The table
      // is a deque precisely so that growth from inside the handler being
      // invoked here cannot relocate it mid-call.)
      Mailbox& box = nodes_[static_cast<std::size_t>(to.value())];
      if (box.handler == nullptr) {
        ++undeliverable_;
        continue;
      }
      ++delivered_;
      box.handler(envelope);
    }
    pool_.release(std::move(inbox));
  }

  sim::Simulator& simulator_;
  MailboxConfig config_;
  util::Rng rng_;
  /// Dense by peer id — no hashing on delivery. A deque, not a vector:
  /// handlers may attach/send to previously unseen peers, and growing the
  /// table must not relocate the Mailbox whose handler is executing.
  std::deque<Mailbox> nodes_;
  EnvelopePool<Envelope<Payload>> pool_;
  std::uint64_t next_group_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t undeliverable_ = 0;
  std::uint64_t events_scheduled_ = 0;
  std::uint64_t drains_ = 0;
  std::size_t max_batch_ = 0;
};

}  // namespace p2ps::net
