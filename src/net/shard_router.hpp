// Cross-shard envelope transport for the conservative-parallel runner.
//
// The MailboxRouter idea lifted one level up: instead of batching messages
// per (destination peer, tick) inside one simulator, the ShardRouter
// batches envelopes per (destination *shard*, delivery tick) across N
// simulators stepping in lockstep windows (sim/shard_runner.hpp). Peers
// are assigned round-robin — shard_of(p) = p mod N — so seed peers and
// arrival indices spread evenly for every shard count.
//
// Determinism contract (docs/sharding.md carries the full argument):
//   * Lookahead. Every envelope must satisfy deliver_at - sent_at >=
//     `window` (the minimum latency of the active latency model). A send
//     below the lookahead is a hard contract violation — it would have to
//     be delivered inside the window that produced it, which the barrier
//     protocol cannot do, so it aborts rather than silently reorders.
//   * Canonical drain order. All envelopes delivered on one (shard, tick)
//     drain through ONE pooled event, sorted by (to, sent_at, from, seq)
//     with seq a per-*sender* counter. Every component of that key is a
//     property of the traffic itself, never of the partitioning — unlike
//     arrival order into the batch (local sends append at send time,
//     remote sends at the next barrier), which is why the batch is sorted
//     rather than drained FIFO. Merged output is therefore byte-identical
//     for any shard count.
//   * Windowed exchange. Cross-shard envelopes accumulate in per-(source,
//     destination) outboxes during a window and move to the destination's
//     delivery groups at the barrier, by the coordinator, while workers
//     are parked — the only moment an envelope crosses a thread boundary.
//
// Steady state is allocation-free: delivery groups come off a free list
// (entry vectors keep their capacity across reuse), outbox rows keep
// theirs, and the tick -> group index is an open-addressed power-of-two
// ring rather than a hash map. The ring works because live delivery ticks
// always span less than the model's maximum latency: two distinct ticks
// t1 != t2 with |t1 - t2| < ring size cannot share tick mod ring size, so
// once the ring outgrows the live span every live tick owns its slot
// uniquely. On a collision the ring doubles and every live group rehashes
// — a handful of doublings early in a run, then never again.
//
// Thread-safety: during a window, shard s's engine may call send(s, ...)
// from its own thread; that touches only shard s's outbox row and shard
// s's own delivery groups (local sends). exchange() and bind() are
// coordinator-only.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/ids.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/sim_time.hpp"

namespace p2ps::net {

template <typename Payload>
class ShardRouter {
 public:
  struct Envelope {
    core::PeerId from;
    core::PeerId to;
    util::SimTime sent_at;     ///< send tick (source simulator's now)
    util::SimTime deliver_at;  ///< sent_at + engine-sampled latency
    std::uint64_t seq = 0;     ///< per-sender send counter (partition-free)
    Payload payload;
  };
  using Handler = std::function<void(const Envelope&)>;

  ShardRouter(int num_shards, util::SimTime window)
      : num_shards_(num_shards), window_(window), ports_(static_cast<std::size_t>(num_shards)) {
    P2PS_REQUIRE_MSG(num_shards_ >= 1, "ShardRouter needs at least one shard");
    P2PS_REQUIRE_MSG(window_ >= util::SimTime::millis(1),
                     "conservative lookahead must be at least one tick");
    for (Port& port : ports_) {
      port.outbox.resize(static_cast<std::size_t>(num_shards_));
      port.ring.assign(kInitialRingSlots, kNoGroup);
    }
  }
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  [[nodiscard]] int num_shards() const { return num_shards_; }
  [[nodiscard]] util::SimTime window() const { return window_; }

  /// Round-robin peer ownership: seeds (ids 0..S-1) and arrival indices
  /// spread evenly across shards for every shard count.
  [[nodiscard]] int shard_of(core::PeerId peer) const {
    return static_cast<int>(peer.value() % static_cast<std::uint64_t>(num_shards_));
  }

  /// Attaches shard `shard`'s simulator and delivery handler. Must be
  /// called exactly once per shard, before any send.
  void bind(int shard, sim::Simulator& simulator, Handler on_deliver) {
    Port& port = port_at(shard);
    P2PS_REQUIRE_MSG(port.simulator == nullptr, "shard bound twice");
    P2PS_REQUIRE(on_deliver != nullptr);
    port.simulator = &simulator;
    port.on_deliver = std::move(on_deliver);
  }

  /// Sends one envelope from shard `from_shard` (which must own
  /// envelope.from and whose simulator's now() must equal sent_at).
  /// Local deliveries join the source shard's own groups immediately;
  /// cross-shard deliveries park in the outbox until the next exchange().
  void send(int from_shard, Envelope envelope) {
    Port& source = port_at(from_shard);
    P2PS_REQUIRE_MSG(source.simulator != nullptr, "send before bind");
    P2PS_CHECK_MSG(shard_of(envelope.from) == from_shard,
                   "envelope sent from a shard that does not own the sender");
    P2PS_CHECK_MSG(envelope.deliver_at >= envelope.sent_at + window_,
                   "lookahead violation: message latency below the shard "
                   "window width (see docs/sharding.md)");
    ++sent_total_;
    const int to_shard = shard_of(envelope.to);
    if (to_shard == from_shard) {
      enqueue(source, std::move(envelope));
      return;
    }
    ++cross_shard_total_;
    source.outbox[static_cast<std::size_t>(to_shard)].push_back(std::move(envelope));
  }

  /// Barrier step (coordinator-only, workers parked): moves every outbox
  /// batch into its destination shard's delivery groups. Every
  /// destination simulator must already sit at the barrier tick, which the
  /// lookahead guarantees is strictly before any batched delivery.
  void exchange() {
    for (Port& source : ports_) {
      for (int to_shard = 0; to_shard < num_shards_; ++to_shard) {
        auto& batch = source.outbox[static_cast<std::size_t>(to_shard)];
        if (batch.empty()) continue;
        Port& destination = port_at(to_shard);
        for (Envelope& envelope : batch) {
          P2PS_CHECK_MSG(envelope.deliver_at > destination.simulator->now(),
                         "cross-shard envelope due before the barrier tick");
          enqueue(destination, std::move(envelope));
        }
        batch.clear();  // capacity kept — the outbox row is pooled
      }
    }
  }

  /// Total envelopes accepted / envelopes that crossed a shard boundary.
  [[nodiscard]] std::uint64_t sent_total() const { return sent_total_; }
  [[nodiscard]] std::uint64_t cross_shard_total() const { return cross_shard_total_; }

  /// Delivery-group pool traffic: groups constructed fresh vs recycled off
  /// a free list (entry capacity kept). A healthy steady state reuses far
  /// more than it allocates.
  [[nodiscard]] std::uint64_t pool_allocations() const { return pool_allocations_; }
  [[nodiscard]] std::uint64_t pool_reuses() const { return pool_reuses_; }

  /// Delivery groups currently pending on one shard (tests/diagnostics).
  [[nodiscard]] std::size_t pending_groups(int shard) const {
    return port_at(shard).live_groups;
  }
  /// Current tick-ring capacity of one shard (tests/diagnostics).
  [[nodiscard]] std::size_t ring_slots(int shard) const {
    return port_at(shard).ring.size();
  }

 private:
  /// One per-(shard, tick) delivery batch behind one pooled drain event.
  struct Group {
    std::vector<Envelope> entries;
    std::int64_t tick_ms = 0;
    std::uint32_t next_free = kNoGroup;
  };

  struct Port {
    sim::Simulator* simulator = nullptr;
    Handler on_deliver;
    /// Pending cross-shard envelopes, one row per destination shard.
    std::vector<std::vector<Envelope>> outbox;
    /// Open-addressed tick -> group index: slot = tick mod ring size
    /// (power of two). Uniqueness holds because live ticks span less than
    /// the ring size (see file header); a collision doubles the ring.
    std::vector<std::uint32_t> ring;
    std::vector<Group> groups;
    std::uint32_t free_head = kNoGroup;
    std::size_t live_groups = 0;
    /// Drain scratch, swapped with a group's entries so reentrant sends
    /// from handlers can grow `groups` safely mid-drain.
    std::vector<Envelope> drain_scratch;
  };

  static constexpr std::uint32_t kNoGroup = 0xFFFFFFFFu;
  static constexpr std::size_t kInitialRingSlots = 64;

  Port& port_at(int shard) {
    P2PS_REQUIRE(shard >= 0 && shard < num_shards_);
    return ports_[static_cast<std::size_t>(shard)];
  }
  const Port& port_at(int shard) const {
    P2PS_REQUIRE(shard >= 0 && shard < num_shards_);
    return ports_[static_cast<std::size_t>(shard)];
  }

  [[nodiscard]] static std::size_t slot_of(const Port& port, std::int64_t tick_ms) {
    return static_cast<std::size_t>(tick_ms) & (port.ring.size() - 1);
  }

  /// Doubles the ring until every live group owns a unique slot. Each
  /// doubling is attempted whole; a collision mid-rehash just doubles
  /// again. Terminates because live ticks span less than the model's
  /// maximum latency: once the ring size exceeds that span, distinct live
  /// ticks cannot share tick mod ring size.
  void grow_ring(Port& port) {
    for (;;) {
      std::vector<std::uint32_t> next(port.ring.size() * 2, kNoGroup);
      bool clean = true;
      for (const std::uint32_t index : port.ring) {
        if (index == kNoGroup) continue;
        const std::size_t slot = static_cast<std::size_t>(port.groups[index].tick_ms) &
                                 (next.size() - 1);
        if (next[slot] != kNoGroup) {
          clean = false;
          break;
        }
        next[slot] = index;
      }
      port.ring.swap(next);
      if (clean) return;
    }
  }

  void enqueue(Port& port, Envelope envelope) {
    const std::int64_t tick_ms = envelope.deliver_at.as_millis();
    std::size_t slot = slot_of(port, tick_ms);
    while (port.ring[slot] != kNoGroup &&
           port.groups[port.ring[slot]].tick_ms != tick_ms) {
      grow_ring(port);
      slot = slot_of(port, tick_ms);
    }
    std::uint32_t index = port.ring[slot];
    if (index == kNoGroup) {
      index = acquire_group(port, tick_ms);
      port.ring[slot] = index;
      ++port.live_groups;
      const int port_index = static_cast<int>(&port - ports_.data());
      port.simulator->schedule_at(
          envelope.deliver_at,
          [this, port_index, index] { drain(port_at(port_index), index); });
    }
    port.groups[index].entries.push_back(std::move(envelope));
  }

  std::uint32_t acquire_group(Port& port, std::int64_t tick_ms) {
    std::uint32_t index;
    if (port.free_head != kNoGroup) {
      index = port.free_head;
      port.free_head = port.groups[index].next_free;
      ++pool_reuses_;
    } else {
      P2PS_CHECK_MSG(port.groups.size() < kNoGroup, "delivery group pool exhausted");
      port.groups.emplace_back();
      index = static_cast<std::uint32_t>(port.groups.size() - 1);
      ++pool_allocations_;
    }
    port.groups[index].tick_ms = tick_ms;
    return index;
  }

  void drain(Port& port, std::uint32_t index) {
    Group& group = port.groups[index];
    P2PS_CHECK(port.drain_scratch.empty());
    port.drain_scratch.swap(group.entries);
    const std::size_t slot = slot_of(port, group.tick_ms);
    P2PS_CHECK(port.ring[slot] == index);
    port.ring[slot] = kNoGroup;
    --port.live_groups;
    group.next_free = port.free_head;
    port.free_head = index;
    // The canonical order: every key component is a property of the
    // traffic, not of the partitioning (docs/sharding.md).
    std::sort(port.drain_scratch.begin(), port.drain_scratch.end(),
              [](const Envelope& a, const Envelope& b) {
                if (a.to != b.to) return a.to.value() < b.to.value();
                if (a.sent_at != b.sent_at) return a.sent_at < b.sent_at;
                if (a.from != b.from) return a.from.value() < b.from.value();
                return a.seq < b.seq;
              });
    for (const Envelope& envelope : port.drain_scratch) {
      port.on_deliver(envelope);
    }
    port.drain_scratch.clear();  // capacity kept — the scratch is pooled
  }

  int num_shards_;
  util::SimTime window_;
  std::vector<Port> ports_;
  std::uint64_t sent_total_ = 0;
  std::uint64_t cross_shard_total_ = 0;
  std::uint64_t pool_allocations_ = 0;
  std::uint64_t pool_reuses_ = 0;
};

}  // namespace p2ps::net
