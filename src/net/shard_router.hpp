// Cross-shard envelope transport for the conservative-parallel runner.
//
// The MailboxRouter idea lifted one level up: instead of batching messages
// per (destination peer, tick) inside one simulator, the ShardRouter
// batches envelopes per (destination *shard*, delivery tick) across N
// simulators stepping in lockstep windows (sim/shard_runner.hpp). Peers
// are assigned round-robin — shard_of(p) = p mod N — so seed peers and
// arrival indices spread evenly for every shard count.
//
// Determinism contract (docs/sharding.md carries the full argument):
//   * Lookahead. Every envelope must satisfy deliver_at - sent_at >=
//     `window` (the minimum latency of the active latency model). A send
//     below the lookahead is a hard contract violation — it would have to
//     be delivered inside the window that produced it, which the barrier
//     protocol cannot do, so it aborts rather than silently reorders.
//   * Canonical drain order. All envelopes delivered on one (shard, tick)
//     drain through ONE pooled event, sorted by (to, sent_at, from, seq)
//     with seq a per-*sender* counter. Every component of that key is a
//     property of the traffic itself, never of the partitioning — unlike
//     arrival order into the batch (local sends append at send time,
//     remote sends at the next barrier), which is why the batch is sorted
//     rather than drained FIFO. Merged output is therefore byte-identical
//     for any shard count.
//   * Windowed exchange. Cross-shard envelopes accumulate in per-(source,
//     destination) outboxes during a window and move to the destination's
//     delivery groups at the barrier, by the coordinator, while workers
//     are parked — the only moment an envelope crosses a thread boundary.
//
// Steady state is allocation-free: delivery groups come off a free list
// (entry vectors keep their capacity across reuse), outbox rows keep
// theirs, and the tick -> group index is an open-addressed power-of-two
// ring rather than a hash map. The ring works because live delivery ticks
// always span less than the model's maximum latency: two distinct ticks
// t1 != t2 with |t1 - t2| < ring size cannot share tick mod ring size, so
// once the ring outgrows the live span every live tick owns its slot
// uniquely. On a collision the ring doubles and every live group rehashes
// — a handful of doublings early in a run, then never again.
//
// Thread-safety: during a window, shard s's engine may call send(s, ...)
// from its own thread; that touches only shard s's outbox row and shard
// s's own delivery groups (local sends). exchange() and bind() are
// coordinator-only.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/ids.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/sim_time.hpp"

namespace p2ps::net {

template <typename Payload>
class ShardRouter {
 public:
  /// Compact wire format: ids and ticks are 32-bit on purpose. The engine
  /// validates every schedulable tick below 2^32 ms (~49.7 simulated days,
  /// ShardedConfig::validate) and peer ids are array indexes far below
  /// 2^32, while tens of millions of envelopes are copied
  /// outbox -> group -> drain per perf run — the 56 -> 40 byte shrink is a
  /// measured throughput win on exactly that path.
  struct Envelope {
    std::uint32_t from = 0;        ///< sender PeerId value
    std::uint32_t to = 0;          ///< destination PeerId value
    std::uint32_t sent_at = 0;     ///< send tick in ms (source sim's now)
    std::uint32_t deliver_at = 0;  ///< sent_at + engine-sampled latency, ms
    std::uint32_t seq = 0;         ///< per-sender send counter (partition-free)
    Payload payload;
  };
  /// Delivery handler: a raw function pointer plus an opaque context,
  /// NOT a std::function — the router invokes it once per delivered
  /// envelope (tens of millions per perf run), and the direct call
  /// through a pointer pair is measurably cheaper than std::function's
  /// double indirection. Capture state behind `context`.
  using Handler = void (*)(void* context, const Envelope& envelope);

  ShardRouter(int num_shards, util::SimTime window)
      : num_shards_(num_shards),
        window_(window),
        window_ms_(static_cast<std::uint64_t>(window.as_millis())),
        ports_(static_cast<std::size_t>(num_shards)) {
    P2PS_REQUIRE_MSG(num_shards_ >= 1, "ShardRouter needs at least one shard");
    P2PS_REQUIRE_MSG(window_ >= util::SimTime::millis(1),
                     "conservative lookahead must be at least one tick");
    for (Port& port : ports_) {
      port.outbox.resize(static_cast<std::size_t>(num_shards_));
      port.ring.assign(kInitialRingSlots, kNoGroup);
    }
  }
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  [[nodiscard]] int num_shards() const { return num_shards_; }
  [[nodiscard]] util::SimTime window() const { return window_; }

  /// Round-robin peer ownership: seeds (ids 0..S-1) and arrival indices
  /// spread evenly across shards for every shard count.
  [[nodiscard]] int shard_of(core::PeerId peer) const {
    return static_cast<int>(peer.value() % static_cast<std::uint64_t>(num_shards_));
  }
  [[nodiscard]] int shard_of(std::uint64_t peer_value) const {
    return static_cast<int>(peer_value % static_cast<std::uint64_t>(num_shards_));
  }

  /// Attaches shard `shard`'s simulator and delivery handler. Must be
  /// called exactly once per shard, before any send. `context` is handed
  /// back verbatim on every delivery (it may be null if the handler
  /// ignores it).
  void bind(int shard, sim::Simulator& simulator, void* context,
            Handler on_deliver) {
    Port& port = port_at(shard);
    P2PS_REQUIRE_MSG(port.simulator == nullptr, "shard bound twice");
    P2PS_REQUIRE(on_deliver != nullptr);
    port.simulator = &simulator;
    port.context = context;
    port.on_deliver = on_deliver;
  }

  /// Sends one envelope from shard `from_shard` (which must own
  /// envelope.from and whose simulator's now() must equal sent_at).
  /// Local deliveries join the source shard's own groups immediately;
  /// cross-shard deliveries park in the outbox until the next exchange().
  void send(int from_shard, Envelope envelope) {
    Port& source = port_at(from_shard);
    P2PS_REQUIRE_MSG(source.simulator != nullptr, "send before bind");
    P2PS_CHECK_MSG(shard_of(std::uint64_t{envelope.from}) == from_shard,
                   "envelope sent from a shard that does not own the sender");
    P2PS_CHECK_MSG(std::uint64_t{envelope.deliver_at} >=
                       std::uint64_t{envelope.sent_at} + window_ms_,
                   "lookahead violation: message latency below the shard "
                   "window width (see docs/sharding.md)");
    ++sent_total_;
    const int to_shard = shard_of(std::uint64_t{envelope.to});
    if (to_shard == from_shard) {
      enqueue(source, std::move(envelope));
      return;
    }
    ++cross_shard_total_;
    auto& batch = source.outbox[static_cast<std::size_t>(to_shard)];
    if (batch.empty()) source.dirty_rows.push_back(to_shard);
    batch.push_back(std::move(envelope));
  }

  /// Barrier step (coordinator-only, workers parked): moves every outbox
  /// batch into its destination shard's delivery groups. Every
  /// destination simulator must already sit at the barrier tick, which the
  /// lookahead guarantees is strictly before any batched delivery.
  ///
  /// Cost is O(rows actually written this window), not O(shards^2): each
  /// source port tracks which destination rows it touched (thread-confined
  /// — only the source's own worker appends), and the dirty list is sorted
  /// ascending here so batches move in exactly the (source, destination)
  /// order the full scan used.
  void exchange() {
    for (Port& source : ports_) {
      if (source.dirty_rows.empty()) continue;
      std::sort(source.dirty_rows.begin(), source.dirty_rows.end());
      for (const int to_shard : source.dirty_rows) {
        auto& batch = source.outbox[static_cast<std::size_t>(to_shard)];
        Port& destination = port_at(to_shard);
        for (Envelope& envelope : batch) {
          P2PS_CHECK_MSG(static_cast<std::int64_t>(envelope.deliver_at) >
                             destination.simulator->now().as_millis(),
                         "cross-shard envelope due before the barrier tick");
          enqueue(destination, std::move(envelope));
        }
        batch.clear();  // capacity kept — the outbox row is pooled
      }
      source.dirty_rows.clear();
    }
  }

  /// Total envelopes accepted / envelopes that crossed a shard boundary.
  [[nodiscard]] std::uint64_t sent_total() const { return sent_total_; }
  [[nodiscard]] std::uint64_t cross_shard_total() const { return cross_shard_total_; }

  /// Delivery-group pool traffic: groups constructed fresh vs recycled off
  /// a free list (entry capacity kept). A healthy steady state reuses far
  /// more than it allocates.
  [[nodiscard]] std::uint64_t pool_allocations() const { return pool_allocations_; }
  [[nodiscard]] std::uint64_t pool_reuses() const { return pool_reuses_; }

  /// Delivery groups currently pending on one shard (tests/diagnostics).
  [[nodiscard]] std::size_t pending_groups(int shard) const {
    return port_at(shard).live_groups;
  }
  /// Current tick-ring capacity of one shard (tests/diagnostics).
  [[nodiscard]] std::size_t ring_slots(int shard) const {
    return port_at(shard).ring.size();
  }

 private:
  /// One per-(shard, tick) delivery batch behind one pooled drain event.
  struct Group {
    std::vector<Envelope> entries;
    std::int64_t tick_ms = 0;
    std::uint32_t next_free = kNoGroup;
  };

  struct Port {
    sim::Simulator* simulator = nullptr;
    Handler on_deliver = nullptr;
    void* context = nullptr;
    /// Pending cross-shard envelopes, one row per destination shard.
    std::vector<std::vector<Envelope>> outbox;
    /// Destination shards with a non-empty outbox row (each appears once:
    /// rows register when they go non-empty, deregister at exchange).
    std::vector<int> dirty_rows;
    /// Open-addressed tick -> group index: slot = tick mod ring size
    /// (power of two). Uniqueness holds because live ticks span less than
    /// the ring size (see file header); a collision doubles the ring.
    std::vector<std::uint32_t> ring;
    std::vector<Group> groups;
    std::uint32_t free_head = kNoGroup;
    std::size_t live_groups = 0;
    /// Drain scratch, swapped with a group's entries so reentrant sends
    /// from handlers can grow `groups` safely mid-drain.
    std::vector<Envelope> drain_scratch;
  };

  static constexpr std::uint32_t kNoGroup = 0xFFFFFFFFu;
  static constexpr std::size_t kInitialRingSlots = 64;

  Port& port_at(int shard) {
    P2PS_REQUIRE(shard >= 0 && shard < num_shards_);
    return ports_[static_cast<std::size_t>(shard)];
  }
  const Port& port_at(int shard) const {
    P2PS_REQUIRE(shard >= 0 && shard < num_shards_);
    return ports_[static_cast<std::size_t>(shard)];
  }

  [[nodiscard]] static std::size_t slot_of(const Port& port, std::int64_t tick_ms) {
    return static_cast<std::size_t>(tick_ms) & (port.ring.size() - 1);
  }

  /// Doubles the ring until every live group owns a unique slot. Each
  /// doubling is attempted whole; a collision mid-rehash just doubles
  /// again. Terminates because live ticks span less than the model's
  /// maximum latency: once the ring size exceeds that span, distinct live
  /// ticks cannot share tick mod ring size.
  void grow_ring(Port& port) {
    for (;;) {
      std::vector<std::uint32_t> next(port.ring.size() * 2, kNoGroup);
      bool clean = true;
      for (const std::uint32_t index : port.ring) {
        if (index == kNoGroup) continue;
        const std::size_t slot = static_cast<std::size_t>(port.groups[index].tick_ms) &
                                 (next.size() - 1);
        if (next[slot] != kNoGroup) {
          clean = false;
          break;
        }
        next[slot] = index;
      }
      port.ring.swap(next);
      if (clean) return;
    }
  }

  void enqueue(Port& port, Envelope envelope) {
    const std::int64_t tick_ms = envelope.deliver_at;
    std::size_t slot = slot_of(port, tick_ms);
    while (port.ring[slot] != kNoGroup &&
           port.groups[port.ring[slot]].tick_ms != tick_ms) {
      grow_ring(port);
      slot = slot_of(port, tick_ms);
    }
    std::uint32_t index = port.ring[slot];
    if (index == kNoGroup) {
      index = acquire_group(port, tick_ms);
      port.ring[slot] = index;
      ++port.live_groups;
      const int port_index = static_cast<int>(&port - ports_.data());
      port.simulator->schedule_at(
          util::SimTime::millis(tick_ms),
          [this, port_index, index] { drain(port_at(port_index), index); });
    }
    port.groups[index].entries.push_back(std::move(envelope));
  }

  std::uint32_t acquire_group(Port& port, std::int64_t tick_ms) {
    std::uint32_t index;
    if (port.free_head != kNoGroup) {
      index = port.free_head;
      port.free_head = port.groups[index].next_free;
      ++pool_reuses_;
    } else {
      P2PS_CHECK_MSG(port.groups.size() < kNoGroup, "delivery group pool exhausted");
      port.groups.emplace_back();
      index = static_cast<std::uint32_t>(port.groups.size() - 1);
      ++pool_allocations_;
    }
    port.groups[index].tick_ms = tick_ms;
    return index;
  }

  void drain(Port& port, std::uint32_t index) {
    Group& group = port.groups[index];
    const std::size_t slot = slot_of(port, group.tick_ms);
    P2PS_CHECK(port.ring[slot] == index);
    port.ring[slot] = kNoGroup;
    --port.live_groups;
    if (group.entries.size() == 1) {
      // Singleton fast path — the common case at scale (most delivery
      // ticks carry exactly one envelope): no sort, no scratch swap. The
      // envelope moves to the stack and the group is fully released
      // BEFORE the handler runs, because a reentrant send may grow
      // `groups` and invalidate the reference.
      Envelope envelope = std::move(group.entries.front());
      group.entries.clear();  // capacity kept — the group is pooled
      group.next_free = port.free_head;
      port.free_head = index;
      port.on_deliver(port.context, envelope);
      return;
    }
    P2PS_CHECK(port.drain_scratch.empty());
    port.drain_scratch.swap(group.entries);
    group.next_free = port.free_head;
    port.free_head = index;
    // The canonical (to, sent_at, from, seq) order: every key component is
    // a property of the traffic, not of the partitioning (docs/sharding.md).
    // The four u32 keys pack into two u64 compares — same lexicographic
    // order, roughly half the branches per comparison.
    std::sort(port.drain_scratch.begin(), port.drain_scratch.end(),
              [](const Envelope& a, const Envelope& b) {
                const std::uint64_t a_dst =
                    (std::uint64_t{a.to} << 32) | a.sent_at;
                const std::uint64_t b_dst =
                    (std::uint64_t{b.to} << 32) | b.sent_at;
                if (a_dst != b_dst) return a_dst < b_dst;
                const std::uint64_t a_src =
                    (std::uint64_t{a.from} << 32) | a.seq;
                const std::uint64_t b_src =
                    (std::uint64_t{b.from} << 32) | b.seq;
                return a_src < b_src;
              });
    for (const Envelope& envelope : port.drain_scratch) {
      port.on_deliver(port.context, envelope);
    }
    port.drain_scratch.clear();  // capacity kept — the scratch is pooled
  }

  int num_shards_;
  util::SimTime window_;
  std::uint64_t window_ms_;
  std::vector<Port> ports_;
  std::uint64_t sent_total_ = 0;
  std::uint64_t cross_shard_total_ = 0;
  std::uint64_t pool_allocations_ = 0;
  std::uint64_t pool_reuses_ = 0;
};

}  // namespace p2ps::net
