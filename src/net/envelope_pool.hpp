// Recycling pool of inbox buffers for the mailbox delivery subsystem.
//
// Every (destination peer, delivery tick) group owns one inbox — a vector
// of envelopes appended in send order and drained FIFO by a single event.
// At paper scale the router creates and retires millions of groups per
// run; allocating a fresh vector per group would put one malloc/free pair
// on every delivery tick. The pool keeps drained inboxes (cleared, with
// their capacity intact) on a free list, so after a short warm-up phase the
// steady state allocates nothing: the number of vectors ever created is
// bounded by the peak number of concurrently in-flight groups.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace p2ps::net {

/// Pool of `std::vector<Element>` buffers. Move-based: acquire() hands a
/// buffer out by value, release() takes it back, cleared but with capacity
/// preserved.
template <typename Element>
class EnvelopePool {
 public:
  using Inbox = std::vector<Element>;

  /// An empty inbox — recycled when one is free, freshly allocated
  /// otherwise.
  [[nodiscard]] Inbox acquire() {
    if (free_.empty()) {
      ++created_;
      return Inbox{};
    }
    ++reused_;
    Inbox out = std::move(free_.back());
    free_.pop_back();
    return out;
  }

  /// Returns a drained inbox to the pool (contents destroyed, capacity
  /// kept).
  void release(Inbox inbox) {
    inbox.clear();
    free_.push_back(std::move(inbox));
  }

  /// Inboxes ever allocated — bounded by the peak number of groups
  /// simultaneously in flight, not by the message count.
  [[nodiscard]] std::uint64_t created() const { return created_; }
  /// acquire() calls served from the free list.
  [[nodiscard]] std::uint64_t reused() const { return reused_; }
  /// Inboxes currently parked on the free list.
  [[nodiscard]] std::size_t idle() const { return free_.size(); }

 private:
  std::vector<Inbox> free_;
  std::uint64_t created_ = 0;
  std::uint64_t reused_ = 0;
};

}  // namespace p2ps::net
