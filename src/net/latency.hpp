// Pluggable message-latency models for the mailbox delivery subsystem.
//
// The paper evaluates DAC_p2p with instantaneous control exchanges; the
// message-level engine needs a latency regime to be interesting. Four
// models cover the studies the related work runs (VoD reviews and
// BitTorrent-on-demand peer selection evaluate protocols under both
// homogeneous and access-technology-split latencies, and wide-area RTT
// distributions are famously heavy-tailed):
//   * kFixed     — every message takes exactly `fixed` (maximally
//                  batchable: a whole probe fan-out's responses land on one
//                  tick);
//   * kUniform   — per-message U[min, max] at millisecond granularity (the
//                  legacy Transport regime; models jitter and reordering);
//   * kTwoClass  — deterministic per-endpoint half-latencies split by the
//                  paper's bandwidth classes: classes 1..ethernet_class_max
//                  are "ethernet" peers, the rest "modem" peers, and a
//                  message costs half(from) + half(to);
//   * kLogNormal — heavy-tail jitter: latency = median * exp(sigma * Z)
//                  with Z standard normal (Box–Muller over the seeded
//                  stream), floored at 1 ms (a hop is never free) and
//                  capped at `tail_cap`. The occasional very slow message
//                  is what stresses the response-timeout / hold / watchdog
//                  machinery.
#pragma once

#include <algorithm>
#include <cmath>
#include <numbers>
#include <optional>
#include <string_view>

#include "core/peer_class.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace p2ps::net {

enum class LatencyModelKind { kFixed, kUniform, kTwoClass, kLogNormal };

[[nodiscard]] inline std::string_view to_string(LatencyModelKind kind) {
  switch (kind) {
    case LatencyModelKind::kFixed:
      return "fixed";
    case LatencyModelKind::kUniform:
      return "uniform";
    case LatencyModelKind::kTwoClass:
      return "twoclass";
    case LatencyModelKind::kLogNormal:
      return "lognormal";
  }
  P2PS_CHECK_MSG(false, "unreachable latency model kind");
  return "";
}

/// Parses "fixed" | "uniform" | "twoclass" | "lognormal"; nullopt on
/// anything else.
[[nodiscard]] inline std::optional<LatencyModelKind> parse_latency_model_kind(
    std::string_view token) {
  if (token == "fixed") return LatencyModelKind::kFixed;
  if (token == "uniform") return LatencyModelKind::kUniform;
  if (token == "twoclass") return LatencyModelKind::kTwoClass;
  if (token == "lognormal") return LatencyModelKind::kLogNormal;
  return std::nullopt;
}

struct LatencyModel {
  LatencyModelKind kind = LatencyModelKind::kUniform;

  /// kUniform: latency ~ U[min, max] (inclusive, whole milliseconds).
  util::SimTime min = util::SimTime::millis(20);
  util::SimTime max = util::SimTime::millis(80);

  /// kFixed: every message takes exactly this long.
  util::SimTime fixed = util::SimTime::millis(40);

  /// kTwoClass: classes 1..ethernet_class_max ride ethernet, the rest a
  /// modem; a message pays the sum of both endpoints' half-latencies.
  core::PeerClass ethernet_class_max = 2;
  util::SimTime ethernet_half = util::SimTime::millis(10);
  util::SimTime modem_half = util::SimTime::millis(80);

  /// kLogNormal: median latency and log-scale spread. sigma 0.8 puts the
  /// 99th percentile at ~6.4x the median — a realistic wide-area tail —
  /// while tail_cap bounds the pathological draws so a single message
  /// cannot outlive the protocol timeouts by orders of magnitude.
  util::SimTime median = util::SimTime::millis(40);
  double sigma = 0.8;
  util::SimTime tail_cap = util::SimTime::millis(2000);

  /// A model of the given kind with this struct's default parameters.
  [[nodiscard]] static LatencyModel of(LatencyModelKind kind) {
    LatencyModel model;
    model.kind = kind;
    return model;
  }

  void validate() const {
    P2PS_REQUIRE(min >= util::SimTime::zero());
    P2PS_REQUIRE(max >= min);
    P2PS_REQUIRE(fixed >= util::SimTime::zero());
    P2PS_REQUIRE(ethernet_half >= util::SimTime::zero());
    P2PS_REQUIRE(modem_half >= util::SimTime::zero());
    P2PS_REQUIRE(ethernet_class_max >= core::kHighestClass);
    P2PS_REQUIRE(median > util::SimTime::zero());
    P2PS_REQUIRE(sigma >= 0.0);
    P2PS_REQUIRE(tail_cap >= median);
  }

  /// Smallest latency any sample() can return — the conservative lookahead
  /// of the sharded runner (docs/sharding.md): no message sent at t can be
  /// delivered before t + min_latency(). kLogNormal's floor is the explicit
  /// 1 ms clamp in sample().
  [[nodiscard]] util::SimTime min_latency() const {
    switch (kind) {
      case LatencyModelKind::kFixed:
        return fixed;
      case LatencyModelKind::kUniform:
        return min;
      case LatencyModelKind::kTwoClass:
        return 2 * std::min(ethernet_half, modem_half);
      case LatencyModelKind::kLogNormal:
        return util::SimTime::millis(1);
    }
    P2PS_CHECK_MSG(false, "unreachable latency model kind");
    return util::SimTime::zero();
  }

  /// Largest latency any sample() can return. Bounded for every model
  /// (kLogNormal by tail_cap) — what lets engines size hold timeouts so a
  /// commit can never race its own grant's expiry.
  [[nodiscard]] util::SimTime max_latency() const {
    switch (kind) {
      case LatencyModelKind::kFixed:
        return fixed;
      case LatencyModelKind::kUniform:
        return max;
      case LatencyModelKind::kTwoClass:
        return 2 * std::max(ethernet_half, modem_half);
      case LatencyModelKind::kLogNormal:
        return tail_cap;
    }
    P2PS_CHECK_MSG(false, "unreachable latency model kind");
    return util::SimTime::zero();
  }

  /// True when sample() never consumes a draw, for any endpoint pair:
  /// kFixed and kTwoClass are pure functions of the endpoints, and a
  /// zero-spread kUniform short-circuits before its draw. Engines that
  /// hydrate per-peer RNG substreams lazily (the sharded engine's compact
  /// state) use this to release a peer's stream once its remaining sends
  /// can never draw again — the guarantee must match sample()'s draw
  /// behaviour exactly, or the draw sequence (and so the output) changes.
  [[nodiscard]] bool deterministic() const {
    switch (kind) {
      case LatencyModelKind::kFixed:
      case LatencyModelKind::kTwoClass:
        return true;
      case LatencyModelKind::kUniform:
        return min == max;
      case LatencyModelKind::kLogNormal:
        return false;  // Box–Muller always consumes both draws
    }
    P2PS_CHECK_MSG(false, "unreachable latency model kind");
    return false;
  }

  /// Latency of one message. kUniform consumes one draw and kLogNormal two
  /// (Box–Muller); the other models are deterministic functions of the
  /// endpoints, which is what makes whole probe fan-outs land on one
  /// delivery tick and batch.
  [[nodiscard]] util::SimTime sample(core::PeerClass from_class,
                                     core::PeerClass to_class,
                                     util::Rng& rng) const {
    switch (kind) {
      case LatencyModelKind::kFixed:
        return fixed;
      case LatencyModelKind::kUniform: {
        const std::int64_t spread = max.as_millis() - min.as_millis();
        if (spread == 0) return min;
        return min + util::SimTime::millis(rng.uniform_int(0, spread));
      }
      case LatencyModelKind::kTwoClass:
        return half_latency(from_class) + half_latency(to_class);
      case LatencyModelKind::kLogNormal: {
        // Box–Muller with u1 in (0, 1]: two uniform draws per message,
        // always both consumed so the stream position is input-independent.
        const double u1 = 1.0 - rng.uniform01();
        const double u2 = rng.uniform01();
        const double z = std::sqrt(-2.0 * std::log(u1)) *
                         std::cos(2.0 * std::numbers::pi * u2);
        const double ms =
            static_cast<double>(median.as_millis()) * std::exp(sigma * z);
        const std::int64_t clamped = static_cast<std::int64_t>(std::llround(
            std::min(ms, static_cast<double>(tail_cap.as_millis()))));
        return util::SimTime::millis(
            std::max<std::int64_t>(clamped, 1));  // a hop is never free
      }
    }
    P2PS_CHECK_MSG(false, "unreachable latency model kind");
    return util::SimTime::zero();
  }

 private:
  [[nodiscard]] util::SimTime half_latency(core::PeerClass cls) const {
    return cls <= ethernet_class_max ? ethernet_half : modem_half;
  }
};

}  // namespace p2ps::net
