// Message-level (asynchronous) DAC_p2p admission.
//
// The paper evaluates DAC_p2p with instantaneous control exchanges (as does
// src/engine). This module runs the *same* protocol state machines over the
// lossy, latency-bearing Transport, showing the protocol is genuinely
// distributed and tolerant of message loss:
//   * suppliers answer probes locally and place a timeout-guarded hold on a
//     grant, so a crashed or silent requester cannot pin them forever;
//   * requesters collect responses until all candidates answered or a
//     response timeout fires, then commit (StartSession) / abort (Release)
//     and leave Reminders exactly as in Section 4.2;
//   * stale reminders that arrive after a session ended are ignored.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/admission/requester.hpp"
#include "core/admission/supplier.hpp"
#include "core/ids.hpp"
#include "core/selection.hpp"
#include "core/selection_policy.hpp"
#include "lookup/lookup_service.hpp"
#include "net/mailbox.hpp"
#include "net/messages.hpp"
#include "sim/simulator.hpp"
#include "sim/timer_service.hpp"

namespace p2ps::net {

/// The endpoints run over the batched mailbox router; per-(peer, tick)
/// batching and the unbatched per-message baseline share one delivery
/// ordering rule, so the protocol code is mode-oblivious (net/mailbox.hpp).
using MessageTransport = MailboxRouter<Message>;

/// Supplier-side protocol endpoint: wraps a core::SupplierAdmission and
/// answers Probe / StartSession / Release / Reminder messages.
class SupplierEndpoint {
 public:
  struct Config {
    core::PeerClass num_classes = 4;
    bool differentiated = true;
    /// How long a grant hold survives without StartSession/Release.
    util::SimTime hold_timeout = util::SimTime::seconds(10);
    /// Idle elevation period (paper's T_out). Zero disables the endpoint's
    /// self-managed idle timer (the host drives idle_elevate() manually).
    util::SimTime t_out = util::SimTime::zero();
    /// Self-recovery bound: if no EndSession arrives within this time of a
    /// session start (e.g. the teardown message was lost), the endpoint
    /// frees itself. Zero disables the watchdog.
    util::SimTime session_watchdog = util::SimTime::zero();
  };

  /// All three endpoint timeouts (grant hold, idle elevation, session
  /// watchdog) ride `timers` — they are message-silent, so they satisfy the
  /// TimerService callback contract. The requester-side response timeout
  /// does NOT (its firing sends commits/releases) and stays a plain
  /// simulator event in AsyncAdmissionAttempt.
  SupplierEndpoint(core::PeerId self, core::PeerClass own_class, const Config& config,
                   sim::TimerService& timers, MessageTransport& transport,
                   util::Rng rng);
  ~SupplierEndpoint();
  SupplierEndpoint(const SupplierEndpoint&) = delete;
  SupplierEndpoint& operator=(const SupplierEndpoint&) = delete;

  [[nodiscard]] core::PeerId id() const { return self_; }
  [[nodiscard]] const core::SupplierAdmission& admission() const { return admission_; }
  [[nodiscard]] bool holding() const { return timers_.pending(hold_timer_); }
  [[nodiscard]] bool in_session() const { return admission_.busy(); }

  /// Ends the supplier's current session (driven by the session owner) and
  /// applies the paper's session-end vector update. The message-driven
  /// equivalent is an EndSession message carrying the session id.
  void end_session();

  /// Applies the idle-timeout elevation (driven by the host's timer when
  /// Config::t_out is zero; self-scheduled otherwise).
  void idle_elevate();

  /// Session this endpoint is currently serving (invalid when idle).
  [[nodiscard]] core::SessionId active_session() const { return active_session_; }

  /// Times the session watchdog freed the slot because the EndSession
  /// teardown never arrived (lost message self-recovery).
  [[nodiscard]] std::int64_t watchdog_recoveries() const { return watchdog_recoveries_; }

 private:
  void on_message(const Envelope<Message>& envelope);
  void clear_hold();
  void arm_idle_timer();
  /// Deadline-anchored form: timer callbacks chain from their own deadline
  /// (not the clock), so lazily delivered firings stay bit-identical.
  void arm_idle_timer_at(util::SimTime deadline);
  void disarm_idle_timer();
  void end_session_at(util::SimTime at);

  core::PeerId self_;
  Config config_;
  sim::TimerService& timers_;
  MessageTransport& transport_;
  util::Rng rng_;
  core::SupplierAdmission admission_;
  sim::TimerId hold_timer_ = sim::TimerId::invalid();
  sim::TimerId idle_timer_ = sim::TimerId::invalid();
  sim::TimerId watchdog_timer_ = sim::TimerId::invalid();
  core::SessionId active_session_ = core::SessionId::invalid();
  std::int64_t watchdog_recoveries_ = 0;
};

/// One asynchronous admission attempt by a requesting peer.
///
/// Owns a temporary transport binding for the requester; invokes `done`
/// exactly once — after commit, or after rejection (reminders sent).
class AsyncAdmissionAttempt {
 public:
  struct Result {
    bool admitted = false;
    core::SessionId session;                      ///< set when admitted
    std::vector<lookup::CandidateInfo> suppliers; ///< chosen session suppliers
    std::int64_t buffering_delay_dt = 0;          ///< Theorem-1 delay of the session
    std::size_t responses = 0;                    ///< probe responses received
    std::size_t reminders_left = 0;
  };
  using Callback = std::function<void(const Result&)>;

  struct Config {
    /// Give up on unresponsive candidates after this long.
    util::SimTime response_timeout = util::SimTime::seconds(5);
    bool reminders_enabled = true;
    /// Supplier-selection policy; null means the paper-dac baseline.
    const core::SelectionPolicy* policy = nullptr;
    /// Host-owned RNG substream for randomized policies (may be null for
    /// deterministic ones).
    util::Rng* selection_rng = nullptr;
    /// Host-owned selection buffer, reused across attempts (falls back to
    /// a per-conclude local when null). Sharing is safe because conclude()
    /// never re-enters: message deliveries are scheduled events.
    core::SelectionResult* selection_scratch = nullptr;
  };

  AsyncAdmissionAttempt(core::PeerId self, core::PeerClass own_class,
                        core::SessionId session,
                        std::vector<lookup::CandidateInfo> candidates,
                        const Config& config, sim::Simulator& simulator,
                        MessageTransport& transport, Callback done);
  ~AsyncAdmissionAttempt();
  AsyncAdmissionAttempt(const AsyncAdmissionAttempt&) = delete;
  AsyncAdmissionAttempt& operator=(const AsyncAdmissionAttempt&) = delete;

  /// Sends the probes. Must be called exactly once.
  void start();

 private:
  struct CandidateState {
    lookup::CandidateInfo info;
    std::optional<ProbeResponse> response;
  };

  void on_message(const Envelope<Message>& envelope);
  void conclude();

  core::PeerId self_;
  core::PeerClass own_class_;
  core::SessionId session_;
  Config config_;
  sim::Simulator& simulator_;
  MessageTransport& transport_;
  Callback done_;
  std::vector<CandidateState> candidates_;
  sim::EventId timeout_event_ = sim::EventId::invalid();
  bool started_ = false;
  bool concluded_ = false;
};

}  // namespace p2ps::net
