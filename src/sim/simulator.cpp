#include "sim/simulator.hpp"

#include <utility>

namespace p2ps::sim {

Simulator::Simulator(EventListKind event_list)
    : queue_(make_event_list(event_list)) {}

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    return index;
  }
  P2PS_CHECK_MSG(slots_.size() < kNoSlot, "event slab exhausted");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  ++slot.generation;  // invalidates every outstanding id for this slot
  slot.next_free = free_head_;
  free_head_ = index;
}

EventId Simulator::schedule_impl(util::SimTime t, Callback cb, bool timer) {
  P2PS_REQUIRE_MSG(t >= now_, "cannot schedule an event in the past");
  P2PS_REQUIRE(cb != nullptr);
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.cb = std::move(cb);
  slot.timer = timer;
  const EventId id = pack(index, slot.generation);
  const CalendarEntry entry{t, next_seq_++, id.value()};
  if (staged_ && entry < *staged_) {
    // Keep the staging invariant (staged_ <= everything queued): the new
    // entry undercuts the staged minimum, so they swap places. Ties stay
    // with the staged entry — its seq is older, preserving FIFO order.
    queue_->push(*staged_);
    *staged_ = entry;
  } else {
    queue_->push(entry);
  }
  ++live_;
  if (timer) ++live_timers_;
  if (live_ > peak_live_) {
    peak_live_ = live_;
    peak_live_timers_ = live_timers_;
  }
  return id;
}

EventId Simulator::schedule_at(util::SimTime t, Callback cb) {
  return schedule_impl(t, std::move(cb), /*timer=*/false);
}

EventId Simulator::schedule_timer_at(util::SimTime t, Callback cb) {
  return schedule_impl(t, std::move(cb), /*timer=*/true);
}

EventId Simulator::schedule_after(util::SimTime delay, Callback cb) {
  P2PS_REQUIRE_MSG(delay >= util::SimTime::zero(), "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(cb));
}

bool Simulator::cancel(EventId id) {
  const std::uint32_t index = slot_of(id);
  if (index >= slots_.size()) return false;
  Slot& slot = slots_[index];
  if (slot.generation != generation_of(id) || !slot.cb) return false;
  slot.cb.reset();
  if (slot.timer) --live_timers_;
  release_slot(index);  // queue residue is skipped lazily by pop_live()
  --live_;
  return true;
}

bool Simulator::pending(EventId id) const {
  const std::uint32_t index = slot_of(id);
  return index < slots_.size() &&
         slots_[index].generation == generation_of(id) &&
         static_cast<bool>(slots_[index].cb);
}

const CalendarEntry* Simulator::peek_live() {
  if (staged_) {
    const EventId id{staged_->payload};
    const Slot& slot = slots_[slot_of(id)];
    if (slot.generation == generation_of(id) && slot.cb) return &*staged_;
    staged_.reset();  // cancelled while staged: drop and rescan the queue
  }
  for (;;) {
    const auto entry = queue_->pop();
    if (!entry) return nullptr;
    const EventId id{entry->payload};
    const Slot& slot = slots_[slot_of(id)];
    if (slot.generation == generation_of(id) && slot.cb) {
      staged_ = *entry;
      return &*staged_;
    }
    // Cancelled (or cleared) residue: drop and keep skimming.
  }
}

std::optional<CalendarEntry> Simulator::pop_live() {
  const CalendarEntry* entry = peek_live();
  if (entry == nullptr) return std::nullopt;
  const CalendarEntry result = *entry;
  staged_.reset();
  return result;
}

void Simulator::execute(const CalendarEntry& entry) {
  P2PS_CHECK_MSG(entry.time >= now_, "event queue time order violated");
  const std::uint32_t index = slot_of(EventId{entry.payload});
  now_ = entry.time;
  ++executed_;
  --live_;
  if (slots_[index].timer) --live_timers_;
  // Move the callback out and release the slot before invoking: the
  // callback may freely schedule (reusing this slot) or cancel events.
  Callback cb = std::move(slots_[index].cb);
  release_slot(index);
  cb();
}

bool Simulator::step() {
  const auto entry = pop_live();
  if (!entry) return false;
  execute(*entry);
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && step()) ++executed;
  return executed;
}

std::size_t Simulator::run_until(util::SimTime t) {
  P2PS_REQUIRE(t >= now_);
  std::size_t executed = 0;
  for (;;) {
    const CalendarEntry* entry = peek_live();
    // A beyond-horizon entry simply stays staged — no reinsertion, and the
    // next peek (this window's next_event_time probe, or the next window's
    // run_until) finds it for free.
    if (entry == nullptr || entry->time > t) break;
    const CalendarEntry current = *entry;
    staged_.reset();
    execute(current);
    ++executed;
  }
  now_ = t;
  return executed;
}

std::optional<util::SimTime> Simulator::next_event_time() {
  const CalendarEntry* entry = peek_live();
  if (entry == nullptr) return std::nullopt;
  return entry->time;
}

void Simulator::clear() {
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].cb) {
      slots_[i].cb.reset();
      release_slot(i);
    }
  }
  live_ = 0;
  live_timers_ = 0;
  staged_.reset();
  queue_->clear();
}

Periodic::Periodic(Simulator& simulator, util::SimTime start, util::SimTime period,
                   std::function<void(util::SimTime)> on_tick)
    : simulator_(simulator), period_(period), on_tick_(std::move(on_tick)) {
  P2PS_REQUIRE(period_ > util::SimTime::zero());
  P2PS_REQUIRE(on_tick_ != nullptr);
  arm(start);
}

void Periodic::arm(util::SimTime at) {
  current_ = simulator_.schedule_at(at, [this] {
    const util::SimTime fired_at = simulator_.now();
    arm(fired_at + period_);
    on_tick_(fired_at);
  });
}

void Periodic::stop() {
  if (!running_) return;
  running_ = false;
  simulator_.cancel(current_);
}

}  // namespace p2ps::sim
