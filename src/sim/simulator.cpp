#include "sim/simulator.hpp"

#include <utility>

namespace p2ps::sim {

EventId Simulator::schedule_at(util::SimTime t, Callback cb) {
  P2PS_REQUIRE_MSG(t >= now_, "cannot schedule an event in the past");
  P2PS_REQUIRE(cb != nullptr);
  const EventId id{next_id_++};
  queue_.push(Entry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

EventId Simulator::schedule_after(util::SimTime delay, Callback cb) {
  P2PS_REQUIRE_MSG(delay >= util::SimTime::zero(), "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(cb));
}

bool Simulator::cancel(EventId id) { return callbacks_.erase(id) > 0; }

void Simulator::skim_cancelled() {
  while (!queue_.empty() && !callbacks_.contains(queue_.top().id)) {
    queue_.pop();
  }
}

bool Simulator::step() {
  skim_cancelled();
  if (queue_.empty()) return false;

  const Entry entry = queue_.top();
  queue_.pop();
  auto node = callbacks_.extract(entry.id);
  P2PS_CHECK(!node.empty());

  P2PS_CHECK_MSG(entry.time >= now_, "event queue time order violated");
  now_ = entry.time;
  ++executed_;
  // Move the callback out before invoking: the callback may schedule or
  // cancel events, growing callbacks_ and invalidating references.
  Callback cb = std::move(node.mapped());
  cb();
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && step()) ++executed;
  return executed;
}

std::size_t Simulator::run_until(util::SimTime t) {
  P2PS_REQUIRE(t >= now_);
  std::size_t executed = 0;
  for (;;) {
    skim_cancelled();
    if (queue_.empty() || queue_.top().time > t) break;
    step();
    ++executed;
  }
  now_ = t;
  return executed;
}

void Simulator::clear() {
  callbacks_.clear();
  queue_ = {};
}

Periodic::Periodic(Simulator& simulator, util::SimTime start, util::SimTime period,
                   std::function<void(util::SimTime)> on_tick)
    : simulator_(simulator), period_(period), on_tick_(std::move(on_tick)) {
  P2PS_REQUIRE(period_ > util::SimTime::zero());
  P2PS_REQUIRE(on_tick_ != nullptr);
  arm(start);
}

void Periodic::arm(util::SimTime at) {
  current_ = simulator_.schedule_at(at, [this] {
    const util::SimTime fired_at = simulator_.now();
    arm(fired_at + period_);
    on_tick_(fired_at);
  });
}

void Periodic::stop() {
  if (!running_) return;
  running_ = false;
  simulator_.cancel(current_);
}

}  // namespace p2ps::sim
