// Lockstep window driver for conservative-parallel sharded simulation.
//
// N shards — each a whole sim::Simulator with its own event population —
// step together through half-open windows (t0, t1] whose end is
//
//     t1 = min(min_next + lookahead - 1, horizon)
//
// where min_next is the earliest pending event across all shards and
// `lookahead` is the minimum cross-peer message latency (classic
// conservative lookahead, Chandy–Misra style but with a global barrier
// instead of null messages). The -1 is load-bearing: Simulator::run_until
// is *inclusive* of its bound, and a message sent at the earliest possible
// tick min_next arrives no sooner than min_next + lookahead — strictly
// after t1 — so no envelope produced inside a window can be due inside it,
// and the barrier exchange (net/shard_router.hpp) always schedules into
// every destination shard's strict future. docs/sharding.md carries the
// full argument.
//
// Idle windows are skipped entirely (min_next jumps the window forward),
// so sparse phases cost one barrier per event cluster, not one per tick.
//
// Window fusion (`fusion > 1`): up to `fusion` consecutive unit windows
// execute inside one dispatch of the runner's outer loop. Each sub-window
// still recomputes min_next, applies the idle skip, and passes through
// at_window_start / run_to / at_barrier exactly as an unfused window
// would — the executed sub-window sequence is IDENTICAL for every fusion
// factor, so payloads are byte-identical by construction and only the
// dispatch accounting (windows() vs windows_fused()) changes. What fusion
// buys is the per-dispatch fixed cost: one outer-loop iteration, one
// profiler dispatch record, and (on a worker pool) fewer full wake/park
// cycles per unit of simulated time. docs/sharding.md, "Adaptive
// lookahead", carries the safety argument: any window of width <=
// lookahead is safe regardless of alignment, and after each barrier the
// global state is consistent, so re-deriving the next sub-window end from
// fresh next-event times is exactly the unfused computation.
//
// Threading: `threads == 1` runs shards round-robin on the caller's
// thread; `threads > 1` parks a persistent worker pool on a std::barrier
// and hands each worker a fixed stripe of shards. Either way the schedule
// of (window, shard) work is identical, shards are thread-confined during
// windows, and the barrier callback runs on the coordinator alone — so
// output is byte-identical for any thread count, and the thread knob only
// changes wall-clock (the --sweep precedent; the build container has
// nproc=1, so speedups are conditioned on core count).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "util/sim_time.hpp"

namespace p2ps::obs {
class PhaseProfiler;
}

namespace p2ps::sim {

class ShardRunner {
 public:
  struct Callbacks {
    /// Earliest pending event time on shard `s` (coordinator thread).
    std::function<std::optional<util::SimTime>(int shard)> next_event_time;
    /// Optional coordinator-only hook before each window's shards run,
    /// with the window's end tick: publish state that must be visible to
    /// every shard during the window (e.g. directory joins whose
    /// visibility tick falls inside it).
    std::function<void(util::SimTime window_end)> at_window_start;
    /// Runs shard `s` to `t` inclusive (run_until semantics); the only
    /// callback invoked off the coordinator thread, one shard per worker
    /// at a time.
    std::function<void(int shard, util::SimTime t)> run_to;
    /// Barrier step at `window_end`, coordinator-only, after every shard
    /// reached window_end: exchange envelopes, publish directory joins.
    std::function<void(util::SimTime window_end)> at_barrier;

    /// Optional wall-clock phase profiler (obs/phase_profiler.hpp): when
    /// set, the runner times each shard's run_to into the shard's step
    /// cell (worker-side, thread-confined) and the at_barrier callback
    /// into the barrier phase. Pure observation — the (window, shard)
    /// schedule is identical with or without it.
    obs::PhaseProfiler* profiler = nullptr;
  };

  /// `lookahead` must be >= 1 ms (the tick granularity); `threads` is
  /// clamped to [1, num_shards]; `fusion` >= 1 is the maximum number of
  /// unit sub-windows executed per dispatch (1 = classic unfused runner).
  ShardRunner(int num_shards, util::SimTime lookahead, int threads = 1,
              int fusion = 1);

  /// Steps every shard to `horizon` (inclusive, run_until semantics),
  /// calling at_barrier after each window. May be called once.
  void run(util::SimTime horizon, const Callbacks& callbacks);

  /// Dispatches executed by run() — outer-loop iterations, each covering
  /// 1..fusion unit sub-windows. With fusion == 1 this equals the number
  /// of barriers passed (the classic window count).
  [[nodiscard]] std::int64_t windows() const { return windows_; }

  /// Unit sub-windows absorbed into a prior dispatch beyond its first —
  /// i.e. sub_windows() - windows(). Zero when fusion == 1.
  [[nodiscard]] std::int64_t windows_fused() const { return windows_fused_; }

  /// Total unit sub-windows executed (= barriers passed), independent of
  /// the fusion factor — the invariant "how many times did every shard
  /// sync" count that byte-parity across fusion modes rests on.
  [[nodiscard]] std::int64_t sub_windows() const {
    return windows_ + windows_fused_;
  }

  /// Mean simulated span covered per sub-window, in ms (idle skips
  /// included, so sparse phases push this well above the lookahead).
  /// 0 before run().
  [[nodiscard]] double lookahead_avg_ms() const {
    const std::int64_t subs = sub_windows();
    return subs > 0 ? static_cast<double>(span_ms_sum_) /
                          static_cast<double>(subs)
                    : 0.0;
  }

  /// Windows whose start jumped past idle time: the earliest pending event
  /// lay strictly beyond the previous window's end, so the runner skipped
  /// the gap instead of barriering through it tick by tick. High values
  /// mean sparse phases (backoff tails) are being crossed cheaply.
  [[nodiscard]] std::int64_t idle_skips() const { return idle_skips_; }

 private:
  int num_shards_;
  util::SimTime lookahead_;
  int threads_;
  int fusion_;
  std::int64_t windows_ = 0;
  std::int64_t windows_fused_ = 0;
  std::int64_t span_ms_sum_ = 0;
  std::int64_t idle_skips_ = 0;
  bool ran_ = false;
};

}  // namespace p2ps::sim
