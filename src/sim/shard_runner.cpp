#include "sim/shard_runner.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <thread>
#include <vector>

#include "obs/phase_profiler.hpp"
#include "util/assert.hpp"

namespace p2ps::sim {

ShardRunner::ShardRunner(int num_shards, util::SimTime lookahead, int threads,
                         int fusion)
    : num_shards_(num_shards),
      lookahead_(lookahead),
      threads_(std::clamp(threads, 1, num_shards)),
      fusion_(fusion) {
  P2PS_REQUIRE_MSG(num_shards_ >= 1, "ShardRunner needs at least one shard");
  P2PS_REQUIRE_MSG(lookahead_ >= util::SimTime::millis(1),
                   "conservative lookahead must be at least one tick");
  P2PS_REQUIRE_MSG(fusion_ >= 1, "window fusion factor must be at least 1");
}

namespace {

/// Persistent worker pool for threads > 1: each worker owns the shard
/// stripe {worker, worker + T, worker + 2T, ...} — a fixed assignment, so
/// every shard is touched by exactly one thread for the whole run.
class WindowPool {
 public:
  WindowPool(int num_shards, int threads, const ShardRunner::Callbacks& callbacks)
      : num_shards_(num_shards),
        threads_(threads),
        callbacks_(callbacks),
        start_(threads + 1),
        finish_(threads + 1) {
    workers_.reserve(static_cast<std::size_t>(threads_));
    for (int worker = 0; worker < threads_; ++worker) {
      workers_.emplace_back([this, worker] { worker_loop(worker); });
    }
  }

  ~WindowPool() {
    done_.store(true, std::memory_order_release);
    start_.arrive_and_wait();  // release the workers into their exit check
    for (std::thread& worker : workers_) worker.join();
  }

  /// Runs every shard to `t1` on the pool; returns when all are done.
  void run_window(util::SimTime t1) {
    window_end_ = t1;
    start_.arrive_and_wait();
    finish_.arrive_and_wait();
  }

 private:
  void worker_loop(int worker) {
    for (;;) {
      start_.arrive_and_wait();
      if (done_.load(std::memory_order_acquire)) return;
      for (int shard = worker; shard < num_shards_; shard += threads_) {
        callbacks_.run_to(shard, window_end_);
      }
      finish_.arrive_and_wait();
    }
  }

  int num_shards_;
  int threads_;
  const ShardRunner::Callbacks& callbacks_;
  std::barrier<> start_;
  std::barrier<> finish_;
  std::atomic<bool> done_{false};
  util::SimTime window_end_ = util::SimTime::zero();
  std::vector<std::thread> workers_;
};

}  // namespace

void ShardRunner::run(util::SimTime horizon, const Callbacks& callbacks) {
  P2PS_REQUIRE_MSG(!ran_, "run() may be called only once");
  ran_ = true;
  P2PS_REQUIRE(callbacks.next_event_time != nullptr);
  P2PS_REQUIRE(callbacks.run_to != nullptr);
  P2PS_REQUIRE(callbacks.at_barrier != nullptr);
  P2PS_REQUIRE(horizon >= util::SimTime::zero());

  // Profiling wraps the callbacks before the pool captures them, so the
  // worker-side step timing is thread-confined to each shard's own cell
  // and the (window, shard) schedule is untouched either way.
  Callbacks timed = callbacks;
  obs::PhaseProfiler* profiler = callbacks.profiler;
  if (profiler != nullptr) {
    timed.run_to = [profiler, inner = callbacks.run_to](int shard,
                                                        util::SimTime t) {
      const obs::ScopedPhase scope(profiler, obs::Phase::kStep, shard);
      inner(shard, t);
    };
    timed.at_barrier = [profiler,
                        inner = callbacks.at_barrier](util::SimTime t) {
      const obs::ScopedPhase scope(profiler, obs::Phase::kBarrier);
      inner(t);
    };
  }

  std::optional<WindowPool> pool;
  if (threads_ > 1) pool.emplace(num_shards_, threads_, timed);
  const auto run_window = [&](util::SimTime t1) {
    if (timed.at_window_start) timed.at_window_start(t1);
    if (pool) {
      pool->run_window(t1);
    } else if (profiler != nullptr) {
      // Sequential + profiled: fencepost timing. Consecutive shard steps
      // share one clock read (end of shard s = start of shard s+1), so a
      // window costs N+1 reads instead of 2N — the clock is the
      // profiler's dominant cost at hundreds of thousands of tiny
      // windows per run, and telemetry promises <= 3% wall overhead.
      std::uint64_t prev = obs::PhaseProfiler::now_ns();
      for (int shard = 0; shard < num_shards_; ++shard) {
        callbacks.run_to(shard, t1);
        const std::uint64_t now = obs::PhaseProfiler::now_ns();
        profiler->add_shard_step(shard, now - prev);
        prev = now;
      }
    } else {
      for (int shard = 0; shard < num_shards_; ++shard) {
        timed.run_to(shard, t1);
      }
    }
    timed.at_barrier(t1);
  };

  const auto min_next_event = [&] {
    std::optional<util::SimTime> min_next;
    for (int shard = 0; shard < num_shards_; ++shard) {
      const auto next = callbacks.next_event_time(shard);
      if (next && (!min_next || *next < *min_next)) min_next = next;
    }
    return min_next;
  };

  // Closes one dispatch covering `subs` unit sub-windows: one windows_
  // tick, the rest counted as fused. The executed sub-window sequence is
  // independent of where the dispatch boundaries fall (header comment in
  // shard_runner.hpp), so these are pure accounting.
  const auto finish_dispatch = [&](std::int64_t subs) {
    ++windows_;
    windows_fused_ += subs - 1;
    if (profiler != nullptr) {
      profiler->record_dispatch(static_cast<int>(subs));
    }
  };

  util::SimTime prev_end = util::SimTime::zero();
  for (;;) {
    std::int64_t subs = 0;  // unit sub-windows executed in this dispatch
    for (;;) {
      const auto min_next = min_next_event();
      if (min_next && *min_next > prev_end + util::SimTime::millis(1)) {
        ++idle_skips_;  // the window start jumped an idle gap
      }
      if (!min_next || *min_next > horizon) {
        // Nothing (left) inside the horizon: one final window parks every
        // shard's clock exactly at the horizon for the end-of-run reads.
        run_window(horizon);
        span_ms_sum_ += (horizon - prev_end).as_millis();
        finish_dispatch(subs + 1);
        return;
      }
      const util::SimTime t1 =
          std::min(*min_next + lookahead_ - util::SimTime::millis(1), horizon);
      run_window(t1);
      span_ms_sum_ += (t1 - prev_end).as_millis();
      ++subs;
      if (t1 >= horizon) {
        finish_dispatch(subs);
        return;
      }
      prev_end = t1;
      if (subs >= fusion_) break;
    }
    finish_dispatch(subs);
  }
}

}  // namespace p2ps::sim
