#include "sim/timer_service.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <utility>

namespace p2ps::sim {

std::string_view to_string(TimerStrategy strategy) {
  switch (strategy) {
    case TimerStrategy::kEvents: return "events";
    case TimerStrategy::kWheel: return "wheel";
    case TimerStrategy::kLazy: return "lazy";
  }
  P2PS_CHECK_MSG(false, "unreachable timer strategy");
  return "";
}

std::optional<TimerStrategy> parse_timer_strategy(std::string_view name) {
  if (name == "events") return TimerStrategy::kEvents;
  if (name == "wheel") return TimerStrategy::kWheel;
  if (name == "lazy") return TimerStrategy::kLazy;
  return std::nullopt;
}

TimerService::TimerService(Simulator& simulator, TimerConfig config)
    : simulator_(simulator), config_(config) {
  P2PS_REQUIRE(config_.lazy_sweep_period > util::SimTime::zero());
  if (config_.strategy == TimerStrategy::kWheel) {
    wheel_.resize(static_cast<std::size_t>(kLevels) * kSlots);
    wheel_time_ = simulator_.now().as_millis();
  }
}

TimerService::~TimerService() {
  // Release every simulator event the service still owns; the engines
  // destroy the service before the simulator, but the simulator may
  // outlive it in tests.
  if (notify_event_.valid()) simulator_.cancel(notify_event_);
  if (sweep_event_.valid()) simulator_.cancel(sweep_event_);
  for (Slot& slot : slots_) {
    if (slot.armed && slot.event.valid()) simulator_.cancel(slot.event);
  }
}

TimerService::Slot* TimerService::live_slot(TimerId id) {
  const std::uint32_t index = slot_of(id);
  if (index >= slots_.size()) return nullptr;
  Slot& slot = slots_[index];
  if (slot.generation != generation_of(id) || !slot.armed) return nullptr;
  return &slot;
}

const TimerService::Slot* TimerService::live_slot(TimerId id) const {
  return const_cast<TimerService*>(this)->live_slot(id);
}

std::uint32_t TimerService::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    return index;
  }
  P2PS_CHECK_MSG(slots_.size() < kNoSlot, "timer slab exhausted");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void TimerService::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.cb = nullptr;
  slot.armed = false;
  slot.event = EventId::invalid();
  ++slot.generation;  // invalidates every outstanding id for this slot
  slot.next_free = free_head_;
  free_head_ = index;
}

TimerId TimerService::arm_at(util::SimTime deadline, Callback cb) {
  P2PS_REQUIRE(cb != nullptr);
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.cb = std::move(cb);
  slot.deadline = deadline;
  slot.seq = next_seq_++;
  slot.armed = true;
  ++armed_;
  index_timer(index);
  if (!dispatching_) refresh_notification();
  return pack(index, slot.generation);
}

TimerId TimerService::arm_after(util::SimTime delay, Callback cb) {
  P2PS_REQUIRE_MSG(delay >= util::SimTime::zero(), "delay must be non-negative");
  return arm_at(simulator_.now() + delay, std::move(cb));
}

bool TimerService::rearm_at(TimerId id, util::SimTime deadline) {
  Slot* slot = live_slot(id);
  if (slot == nullptr) return false;
  if (slot->event.valid()) {
    simulator_.cancel(slot->event);
    slot->event = EventId::invalid();
  }
  slot->deadline = deadline;
  slot->seq = next_seq_++;  // stale heap/wheel entries stop matching
  index_timer(slot_of(id));
  if (!dispatching_) refresh_notification();
  return true;
}

bool TimerService::rearm_after(TimerId id, util::SimTime delay) {
  P2PS_REQUIRE_MSG(delay >= util::SimTime::zero(), "delay must be non-negative");
  return rearm_at(id, simulator_.now() + delay);
}

bool TimerService::cancel(TimerId id) {
  Slot* slot = live_slot(id);
  if (slot == nullptr) return false;
  // A timer whose deadline has been reached already counts as fired (see
  // pending()); disciplined callers poll() before cancelling, so this only
  // disagrees with the handle's own view during teardown.
  const bool was_future = slot->deadline > simulator_.now();
  if (slot->event.valid()) simulator_.cancel(slot->event);
  release_slot(slot_of(id));
  --armed_;
  return was_future;
}

bool TimerService::pending(TimerId id) const {
  const Slot* slot = live_slot(id);
  return slot != nullptr && slot->deadline > simulator_.now();
}

void TimerService::index_timer(std::uint32_t slot_index) {
  Slot& slot = slots_[slot_index];
  const Entry entry{slot.deadline, slot.seq, slot_index};
  if (slot.deadline < next_due_) next_due_ = slot.deadline;
  if (dispatching_ && slot.deadline <= dispatch_now_) {
    // Armed from inside a firing callback with an already-reached deadline
    // (chain catch-up): feed the running drain directly so it fires in
    // global (deadline, seq) order, ahead of later-due entries.
    due_heap_.push(entry);
    return;
  }
  switch (config_.strategy) {
    case TimerStrategy::kEvents: {
      // The event-per-timer baseline: one dedicated, timer-tagged
      // simulator event per armed timer, exactly the pre-service event
      // mass. The heap still orders same-instant firings.
      heap_.push(entry);
      ++events_scheduled_;
      slot.event = simulator_.schedule_timer_at(
          std::max(slot.deadline, simulator_.now()), [this] { poll(); });
      break;
    }
    case TimerStrategy::kWheel:
      wheel_file(entry);
      break;
    case TimerStrategy::kLazy:
      heap_.push(entry);
      break;
  }
}

void TimerService::dispatch() {
  P2PS_CHECK_MSG(!dispatching_,
                 "TimerService::poll re-entered from a timer callback");
  dispatching_ = true;
  dispatch_now_ = simulator_.now();
  scratch_.clear();
  collect_due(dispatch_now_, scratch_);
  for (const Entry& entry : scratch_) due_heap_.push(entry);
  // Drain in (deadline, arm-seq) order — identical whatever structure held
  // the entries, which is what makes the strategies interchangeable.
  // Callbacks arming already-due timers push into the same heap, so chain
  // catch-up still interleaves by deadline.
  while (!due_heap_.empty()) {
    const Entry entry = due_heap_.top();
    due_heap_.pop();
    if (!entry_live(entry)) continue;  // cancelled/rearmed by an earlier firing
    Slot& slot = slots_[entry.slot];
    Callback cb = std::move(slot.cb);
    if (slot.event.valid()) simulator_.cancel(slot.event);
    release_slot(entry.slot);  // before invoking: the callback may re-arm
    --armed_;
    ++fired_;
    cb(entry.deadline);
  }
  dispatching_ = false;
  refresh_notification();
}

void TimerService::collect_due(util::SimTime now, std::vector<Entry>& out) {
  switch (config_.strategy) {
    case TimerStrategy::kEvents:
    case TimerStrategy::kLazy:
      while (!heap_.empty()) {
        const Entry top = heap_.top();
        if (top.deadline > now) break;
        heap_.pop();
        if (entry_live(top)) out.push_back(top);
      }
      break;
    case TimerStrategy::kWheel:
      wheel_collect_due(now.as_millis(), out);
      break;
  }
}

void TimerService::refresh_notification() {
  switch (config_.strategy) {
    case TimerStrategy::kEvents:
    case TimerStrategy::kLazy: {
      while (!heap_.empty() && !entry_live(heap_.top())) heap_.pop();
      next_due_ =
          heap_.empty() ? util::SimTime::max() : heap_.top().deadline;
      if (config_.strategy == TimerStrategy::kLazy && armed_ > 0 &&
          !simulator_.pending(sweep_event_)) {
        ++events_scheduled_;
        sweep_event_ = simulator_.schedule_timer_at(
            simulator_.now() + config_.lazy_sweep_period, [this] {
              sweep_event_ = EventId::invalid();
              poll();
              refresh_notification();  // next tick, while timers remain
            });
      }
      break;
    }
    case TimerStrategy::kWheel: {
      const std::int64_t hint = wheel_next_due_hint();
      next_due_ = hint == std::numeric_limits<std::int64_t>::max()
                      ? util::SimTime::max()
                      : util::SimTime::millis(hint);
      if (next_due_ == util::SimTime::max()) {
        if (notify_event_.valid()) {
          simulator_.cancel(notify_event_);
          notify_event_ = EventId::invalid();
          notify_time_ = util::SimTime::max();
        }
      } else if (!simulator_.pending(notify_event_) ||
                 notify_time_ > next_due_) {
        if (notify_event_.valid()) simulator_.cancel(notify_event_);
        // next_due_ can sit in the past when cancelled residue is all that
        // is left before the cursor; wake immediately and let the dispatch
        // walk clean it up.
        notify_time_ = std::max(next_due_, simulator_.now());
        ++events_scheduled_;
        notify_event_ = simulator_.schedule_timer_at(notify_time_, [this] {
          notify_event_ = EventId::invalid();
          notify_time_ = util::SimTime::max();
          poll();
          refresh_notification();  // re-arm even when nothing was due
        });
      }
      break;
    }
  }
}

// ---- hierarchical wheel ----

void TimerService::wheel_file(const Entry& entry) {
  const std::int64_t deadline_ms = entry.deadline.as_millis();
  const std::int64_t delta = deadline_ms - wheel_time_;
  if (delta < 0) {
    // Due at the current instant (arm with zero delay): surfaced by the
    // next collect pass rather than refiled behind the cursor.
    due_now_.push_back(entry);
    return;
  }
  for (int level = 0; level < kLevels; ++level) {
    if (delta < level_span(level)) {
      const int slot = static_cast<int>(
          (deadline_ms >> (kSlotBits * level)) & (kSlots - 1));
      wheel_[static_cast<std::size_t>(level) * kSlots + slot].push_back(entry);
      bitmap_[level] |= std::uint64_t{1} << slot;
      return;
    }
  }
  overflow_.push_back(entry);
}

void TimerService::wheel_refile_live(std::vector<Entry>& from) {
  // Swap out first: refiling appends to other buckets — except a wrapped
  // (next-rotation) entry sharing the source slot index, which refiles
  // into the same (now empty) bucket and re-sets its bit.
  std::vector<Entry> moving;
  moving.swap(from);
  for (const Entry& entry : moving) {
    if (entry_live(entry)) wheel_file(entry);  // stale entries drop here
  }
  moving.clear();
  if (from.empty() && from.capacity() < moving.capacity()) {
    from.swap(moving);  // hand the old capacity back
  }
}

void TimerService::wheel_cascade(int level, int slot) {
  auto& bucket = wheel_[static_cast<std::size_t>(level) * kSlots + slot];
  bitmap_[level] &= ~(std::uint64_t{1} << slot);
  if (!bucket.empty()) wheel_refile_live(bucket);
}

void TimerService::wheel_advance_to(std::int64_t t) {
  // Moves the cursor to `t` (one past the last collected instant). The
  // due-scan and the next-due hint exclude the cursor's own slot at every
  // level >= 1 on the grounds that it was cascaded when its window was
  // entered — so any level-k slot window this move enters mid-window (a
  // jump to now+1 can cross boundaries arbitrarily) must be cascaded here,
  // or its entries would be stranded invisible until the next rotation.
  const std::int64_t old = wheel_time_;
  wheel_time_ = t;
  const std::int64_t top_span = level_span(kLevels - 1);
  if (!overflow_.empty() && (t & ~(top_span - 1)) > (old & ~(top_span - 1))) {
    wheel_refile_live(overflow_);
  }
  for (int level = kLevels - 1; level >= 1; --level) {
    const std::int64_t width = level_width(level);
    const std::int64_t slot_start = t & ~(width - 1);
    if (slot_start <= old) continue;  // was already inside this window
    const int slot =
        static_cast<int>((t >> (kSlotBits * level)) & (kSlots - 1));
    if ((bitmap_[level] >> slot) & 1u) wheel_cascade(level, slot);
  }
}

void TimerService::wheel_cascade_at(std::int64_t t) {
  // Top-down, so a level-k slot's entries land at their final lower level
  // before that level's own slot at `t` is processed.
  for (int level = kLevels - 1; level >= 1; --level) {
    if (t % level_width(level) != 0) continue;
    if (level == kLevels - 1 && t % level_span(level) == 0 &&
        !overflow_.empty()) {
      // Top rotation boundary: far-future deadlines may be in range now.
      wheel_refile_live(overflow_);
    }
    const int slot =
        static_cast<int>((t >> (kSlotBits * level)) & (kSlots - 1));
    if ((bitmap_[level] >> slot) & 1u) wheel_cascade(level, slot);
  }
}

std::int64_t TimerService::wheel_next_surfacing() const {
  for (int level = 0; level < kLevels; ++level) {
    const std::int64_t width = level_width(level);
    const std::int64_t rot_base = wheel_time_ & ~(level_span(level) - 1);
    const int cursor = static_cast<int>(
        (wheel_time_ >> (kSlotBits * level)) & (kSlots - 1));
    // Level 0 slots within the current rotation carry exact deadlines, so
    // the cursor's own slot counts; above level 0 the cursor slot was
    // already cascaded (live entries cannot re-enter it), so scan past it.
    const int from = level == 0 ? cursor : cursor + 1;
    const std::uint64_t mask =
        from >= kSlots ? 0 : bitmap_[level] & (~std::uint64_t{0} << from);
    if (mask != 0) return rot_base + std::countr_zero(mask) * width;
    if (bitmap_[level] != 0) {
      // Only wrapped (next-rotation) bits: they surface at the rotation
      // boundary, and every deeper level's deadline is at or past it.
      return rot_base + level_span(level);
    }
  }
  if (!overflow_.empty()) {
    const std::int64_t top_span = level_span(kLevels - 1);
    return (wheel_time_ & ~(top_span - 1)) + top_span;
  }
  return std::numeric_limits<std::int64_t>::max();
}

std::int64_t TimerService::wheel_next_due_hint() const {
  std::int64_t best = wheel_next_surfacing();
  for (const Entry& entry : due_now_) {
    best = std::min(best, entry.deadline.as_millis());
  }
  return best;
}

void TimerService::wheel_collect_due(std::int64_t now_ms,
                                     std::vector<Entry>& out) {
  if (!due_now_.empty()) {
    for (const Entry& entry : due_now_) {
      if (entry_live(entry)) out.push_back(entry);
    }
    due_now_.clear();
  }
  while (wheel_time_ <= now_ms) {
    // Exact level-0 scan across the current 64 ms rotation.
    const std::int64_t base = wheel_time_ & ~static_cast<std::int64_t>(kSlots - 1);
    const int cursor = static_cast<int>(wheel_time_ - base);
    std::uint64_t mask = bitmap_[0] & (~std::uint64_t{0} << cursor);
    while (mask != 0) {
      const int slot = std::countr_zero(mask);
      const std::int64_t slot_time = base + slot;
      if (slot_time > now_ms) {
        wheel_advance_to(now_ms + 1);
        return;
      }
      auto& bucket = wheel_[static_cast<std::size_t>(slot)];
      for (const Entry& entry : bucket) {
        if (entry_live(entry)) out.push_back(entry);  // deadline == slot_time
      }
      bucket.clear();
      bitmap_[0] &= ~(std::uint64_t{1} << slot);
      mask &= mask - 1;
    }
    // Nothing further in this rotation: jump straight to the next instant
    // at which an entry can surface (an occupied slot start or the first
    // rotation boundary owing a cascade), skipping empty regions whole.
    // The mask loop above cleared every level-0 bit at or past the cursor,
    // so the scan's level-0 branch reduces to the wrapped-bits boundary —
    // and a returned target is always past wheel_time_ (progress).
    const std::int64_t target = wheel_next_surfacing();
    if (target > now_ms) {
      wheel_advance_to(now_ms + 1);
      return;
    }
    wheel_advance_to(target);
    wheel_cascade_at(target);
  }
}

}  // namespace p2ps::sim
