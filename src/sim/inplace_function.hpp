// Small-buffer-optimised move-only callable for the event core.
//
// The simulator stores one callback per pending event; at paper scale that
// is tens of thousands of live events and millions scheduled per run, so
// the callback type must not heap-allocate for the common case. Every
// engine callback is tiny (a `this` pointer plus an id or two), so targets
// up to kInlineCapacity bytes are stored inside the object itself; larger
// or potentially-throwing-move targets fall back to a single heap box, so
// arbitrary callables still work.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace p2ps::sim {

/// Move-only `void()` callable with in-place storage for small targets.
/// Invoking an empty callback is undefined; check with operator bool first.
class InplaceCallback {
 public:
  static constexpr std::size_t kInlineCapacity = 48;

  InplaceCallback() = default;
  InplaceCallback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename Fn = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<Fn, InplaceCallback> &&
                                        std::is_invocable_r_v<void, Fn&>>>
  InplaceCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<Fn>()) {
      ::new (storage()) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (storage()) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kBoxedOps<Fn>;
    }
  }

  InplaceCallback(InplaceCallback&& other) noexcept { take(other); }
  InplaceCallback& operator=(InplaceCallback&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }
  InplaceCallback(const InplaceCallback&) = delete;
  InplaceCallback& operator=(const InplaceCallback&) = delete;
  ~InplaceCallback() { reset(); }

  /// True when a target is held. Moved-from callbacks are empty.
  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }
  friend bool operator==(const InplaceCallback& cb, std::nullptr_t) {
    return cb.ops_ == nullptr;
  }

  void operator()() { ops_->invoke(storage()); }

  /// Destroys the target (if any), leaving the callback empty.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage());
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* from, void* to) noexcept;  // move + destroy source
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineCapacity &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*static_cast<Fn*>(s))(); },
      [](void* from, void* to) noexcept {
        ::new (to) Fn(std::move(*static_cast<Fn*>(from)));
        static_cast<Fn*>(from)->~Fn();
      },
      [](void* s) noexcept { static_cast<Fn*>(s)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kBoxedOps = {
      [](void* s) { (**static_cast<Fn**>(s))(); },
      [](void* from, void* to) noexcept {
        ::new (to) Fn*(*static_cast<Fn**>(from));  // transfer box ownership
      },
      [](void* s) noexcept { delete *static_cast<Fn**>(s); },
  };

  void take(InplaceCallback& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->relocate(other.storage(), storage());
      other.ops_ = nullptr;
    }
  }

  [[nodiscard]] void* storage() { return static_cast<void*>(&storage_); }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
};

}  // namespace p2ps::sim
