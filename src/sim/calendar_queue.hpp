// Calendar queue (R. Brown, CACM 1988) — the classic O(1)-amortized event
// list used by discrete-event simulators.
//
// The Simulator's default event list is a binary heap (O(log n), simple,
// cache-friendly); this structure is the standard alternative for very
// large event populations with roughly stationary inter-event gaps. It is
// provided as a substrate component with the same ordering semantics as the
// Simulator's queue (time order, FIFO on equal timestamps via sequence
// numbers) and is compared against the heap in bench/ablation_event_queue.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/assert.hpp"
#include "util/sim_time.hpp"

namespace p2ps::sim {

/// A schedulable entry: fires at `time`; `seq` breaks ties FIFO; `payload`
/// is an opaque handle owned by the caller.
struct CalendarEntry {
  util::SimTime time;
  std::uint64_t seq = 0;
  std::uint64_t payload = 0;

  friend bool operator<(const CalendarEntry& a, const CalendarEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
};

class CalendarQueue {
 public:
  /// `initial_width` — the starting bucket span; adapts as entries flow.
  explicit CalendarQueue(util::SimTime initial_width = util::SimTime::millis(1024),
                         std::size_t initial_buckets = 8);

  void push(CalendarEntry entry);

  /// Removes and returns the earliest entry (FIFO on ties), or nullopt.
  std::optional<CalendarEntry> pop();

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Drops every entry and rewinds the dequeue cursor to time zero, as if
  /// freshly constructed (bucket count and width are kept — they re-adapt).
  void clear();

  /// Observability for tests/benchmarks.
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] std::uint64_t resizes() const { return resizes_; }

 private:
  using Bucket = std::vector<CalendarEntry>;  // kept sorted descending
                                              // (cheap pop from the back)

  [[nodiscard]] std::size_t bucket_index(util::SimTime t) const;
  void insert_sorted(Bucket& bucket, const CalendarEntry& entry);
  /// `reestimate_width` — resample the bucket width while rebucketing.
  /// Only the grow path (size doubled) re-estimates: the shrink path keeps
  /// the current width, halving the per-resize cost of the pop-side
  /// shrink cadence that made the calendar trail the heap on perf_steady.
  void resize(std::size_t new_bucket_count, bool reestimate_width);
  /// Recomputes the bucket width from a sample of the queue's entries.
  [[nodiscard]] util::SimTime estimate_width() const;

  std::vector<Bucket> buckets_;
  util::SimTime width_;
  /// Dequeue cursor: the virtual clock's current bucket and its period.
  std::size_t current_bucket_ = 0;
  util::SimTime current_period_start_;  // start time of the current period
  util::SimTime last_popped_ = util::SimTime::zero();
  std::size_t size_ = 0;
  std::uint64_t resizes_ = 0;
};

}  // namespace p2ps::sim
