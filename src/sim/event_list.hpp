// Pluggable event lists for the discrete-event simulator.
//
// The event list is the simulator's central priority queue of
// (time, seq, payload) entries. Two interchangeable backends are provided:
//
//   * HeapEventList     — binary heap; O(log n), simple, cache-friendly.
//                         The default.
//   * CalendarEventList — Brown-1988 calendar queue; O(1) amortised for
//                         large populations with roughly stationary
//                         inter-event gaps (exactly the paper's regime).
//
// Both backends guarantee the simulator's documented ordering semantics —
// entries pop in nondecreasing time order with FIFO tie-breaking on `seq` —
// so a run produces byte-identical results regardless of the backend
// (enforced by tests/sim_test.cpp and tests/scenario_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "util/sim_time.hpp"

namespace p2ps::sim {

enum class EventListKind : std::uint8_t { kBinaryHeap, kCalendarQueue };

/// CLI/log spelling of a backend: "heap" or "calendar".
[[nodiscard]] std::string_view to_string(EventListKind kind);

/// Parses "heap" / "calendar"; nullopt for anything else.
[[nodiscard]] std::optional<EventListKind> parse_event_list_kind(
    std::string_view name);

/// Interface shared by the backends. Entries compare by (time, seq); the
/// payload is opaque to the list (the simulator stores the event id there).
class EventList {
 public:
  virtual ~EventList() = default;

  virtual void push(const CalendarEntry& entry) = 0;

  /// Removes and returns the least entry (FIFO on ties), or nullopt.
  virtual std::optional<CalendarEntry> pop() = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Drops every entry and resets any dequeue-cursor state, so the list is
  /// indistinguishable from freshly constructed.
  virtual void clear() = 0;

  [[nodiscard]] virtual EventListKind kind() const = 0;

  [[nodiscard]] bool empty() const { return size() == 0; }
};

/// Binary min-heap over a contiguous vector.
class HeapEventList final : public EventList {
 public:
  void push(const CalendarEntry& entry) override;
  std::optional<CalendarEntry> pop() override;
  [[nodiscard]] std::size_t size() const override { return heap_.size(); }
  void clear() override { heap_.clear(); }
  [[nodiscard]] EventListKind kind() const override {
    return EventListKind::kBinaryHeap;
  }

 private:
  std::vector<CalendarEntry> heap_;
};

/// Adapter over the Brown-1988 CalendarQueue.
class CalendarEventList final : public EventList {
 public:
  void push(const CalendarEntry& entry) override { queue_.push(entry); }
  std::optional<CalendarEntry> pop() override { return queue_.pop(); }
  [[nodiscard]] std::size_t size() const override { return queue_.size(); }
  void clear() override { queue_.clear(); }
  [[nodiscard]] EventListKind kind() const override {
    return EventListKind::kCalendarQueue;
  }

 private:
  CalendarQueue queue_;
};

[[nodiscard]] std::unique_ptr<EventList> make_event_list(EventListKind kind);

}  // namespace p2ps::sim
