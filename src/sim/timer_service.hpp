// Unified lazy timer subsystem: one handle-based API over three
// interchangeable firing strategies.
//
// After lazy arrivals (PR 3) and batched message delivery (PR 4), the
// remaining peak-event-list mass is timers: per-supplier idle elevation
// timers (the paper's T_out) and the message-level engine's grant holds and
// session watchdogs — one pending simulator event per armed timer, tens of
// thousands at paper scale. TimerService gives timers their own subsystem:
//
//   * kEvents — the event-per-timer baseline: every armed timer keeps one
//     dedicated (timer-tagged) simulator event. Reference mechanics for the
//     parity tests and the BENCH_5 comparison point.
//   * kWheel  — hierarchical timing wheel (64-slot levels, one occupancy
//     bitmap per level): arm/cancel are O(1), and the simulator carries ONE
//     "next wheel tick" notification event per non-empty horizon instead of
//     one event per timer.
//   * kLazy   — deadline-check-on-probe: arming is a plain store into an
//     engine-local heap with ZERO event-list traffic; due timers fire when
//     the engine touches the service (poll()), backed by a coarse sweep
//     tick as the liveness backstop.
//
// Determinism contract (the ordering argument, in full in docs/timers.md):
// scenario payloads are byte-identical across all three strategies because
//   1. due timers always fire in (deadline, arm-seq) order, whatever
//      structure held them;
//   2. every engine event handler calls poll() on entry, so any observer of
//      timer-guarded state sees every timer with deadline <= its own
//      timestamp already fired — the protocol state a reader observes is a
//      pure function of simulated time, not of which strategy's machinery
//      (dedicated event, wheel tick, sweep, or the reader's own poll)
//      happened to deliver the firing;
//   3. timer callbacks are "message-silent": they mutate engine state and
//      may re-arm timers, but must not send transport messages, schedule
//      non-timer simulator events, or read Simulator::now() — they receive
//      their own deadline instead, so a callback that runs late (lazy sweep)
//      executes bit-identically to one that ran exactly on time.
// Timers whose firing must emit messages (the async engine's response
// timeout) deliberately stay plain simulator events.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <string_view>
#include <vector>

#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/sim_time.hpp"
#include "util/strong_id.hpp"

namespace p2ps::sim {

enum class TimerStrategy : std::uint8_t { kEvents, kWheel, kLazy };

/// CLI/log spelling of a strategy: "events", "wheel" or "lazy".
[[nodiscard]] std::string_view to_string(TimerStrategy strategy);

/// Parses "events" / "wheel" / "lazy"; nullopt for anything else.
[[nodiscard]] std::optional<TimerStrategy> parse_timer_strategy(
    std::string_view name);

struct TimerConfig {
  TimerStrategy strategy = TimerStrategy::kWheel;
  /// kLazy: the sweep-tick period — the only liveness backstop between
  /// engine touches. Pure mechanics: a larger period batches more firings
  /// per poll but cannot change simulation output (see the contract above).
  util::SimTime lazy_sweep_period = util::SimTime::minutes(5);
};

struct TimerIdTag {};

/// Generation-tagged timer handle, exactly like sim::EventId: low 32 bits
/// address a slab slot, high 32 bits carry the slot's generation at arm
/// time, so a stale id can never alias a newer timer reusing the slot.
using TimerId = util::StrongId<TimerIdTag>;

class TimerService {
 public:
  /// Fired with the timer's own deadline (which the lazy strategies may
  /// reach after simulated time has moved on — never read now() here).
  using Callback = std::function<void(util::SimTime deadline)>;

  /// Ties the service to `simulator`, which must outlive it.
  explicit TimerService(Simulator& simulator, TimerConfig config = {});
  ~TimerService();
  TimerService(const TimerService&) = delete;
  TimerService& operator=(const TimerService&) = delete;

  [[nodiscard]] TimerStrategy strategy() const { return config_.strategy; }

  /// The simulator clock, for callers that anchor deadlines without
  /// holding the simulator themselves.
  [[nodiscard]] util::SimTime now() const { return simulator_.now(); }

  /// Arms a one-shot timer at absolute `deadline`. The callback is
  /// consumed on firing; cancel() or rearm_*() before then to keep it.
  /// A deadline at or before now is legal and means "already due": the
  /// timer fires at the next poll (immediately, when armed from inside a
  /// firing callback) carrying its own logical deadline — this is how
  /// deadline-anchored timer chains catch up after a quiet stretch.
  TimerId arm_at(util::SimTime deadline, Callback cb);

  /// Arms a one-shot timer `delay` (>= 0) after now.
  TimerId arm_after(util::SimTime delay, Callback cb);

  /// Moves a pending timer to a new deadline, keeping its id and callback
  /// (the cheap path for the idle-elevation rearm-on-every-request
  /// pattern). Returns false when the id is stale (fired/cancelled).
  bool rearm_at(TimerId id, util::SimTime deadline);
  bool rearm_after(TimerId id, util::SimTime delay);

  /// Cancels a pending timer. Returns true if it was still pending. Safe on
  /// stale ids.
  bool cancel(TimerId id);

  /// True while the timer is armed with a deadline in the future.
  /// Deadline-aware: a timer whose deadline has been reached counts as
  /// fired even if its callback has not run yet — the poll-on-entry
  /// discipline guarantees the callback runs before any engine read that
  /// could tell the difference.
  [[nodiscard]] bool pending(TimerId id) const;

  /// Fires every timer with deadline <= now, in (deadline, arm-seq) order.
  /// Engines call this on entry to every event handler (deadline-check-on-
  /// probe); the strategies' own machinery (dedicated events, wheel
  /// notifications, the lazy sweep) funnels into the same call. Cheap when
  /// nothing is due: one comparison.
  void poll() {
    if (next_due_ > simulator_.now()) return;
    dispatch();
  }

  /// Timers currently armed.
  [[nodiscard]] std::size_t armed() const { return armed_; }
  /// Timers fired over the service's lifetime.
  [[nodiscard]] std::uint64_t fired() const { return fired_; }
  /// Timer-tagged simulator events scheduled by this service — the event
  /// traffic the wheel and lazy strategies exist to remove.
  [[nodiscard]] std::uint64_t events_scheduled() const {
    return events_scheduled_;
  }

 private:
  struct Slot {
    Callback cb;
    util::SimTime deadline = util::SimTime::zero();
    std::uint64_t seq = 0;  ///< bumped on every arm/rearm; keys staleness
    EventId event = EventId::invalid();  ///< kEvents: the dedicated event
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoSlot;
    bool armed = false;
  };

  /// One reference to a (possibly stale) timer inside a heap, wheel slot or
  /// scratch list; authoritative iff the slab slot still carries `seq`.
  struct Entry {
    util::SimTime deadline;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;
    }
  };

  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  // Hierarchical wheel geometry: 64-slot levels of width 64^k ms, one
  // 64-bit occupancy bitmap per level. Five levels span ~12.4 simulated
  // days; rarer deadlines go to the overflow list.
  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 64;
  static constexpr int kLevels = 5;
  [[nodiscard]] static constexpr std::int64_t level_width(int level) {
    return std::int64_t{1} << (kSlotBits * level);
  }
  [[nodiscard]] static constexpr std::int64_t level_span(int level) {
    return std::int64_t{1} << (kSlotBits * (level + 1));
  }

  static TimerId pack(std::uint32_t slot, std::uint32_t generation) {
    return TimerId{(static_cast<std::uint64_t>(generation) << 32) | slot};
  }
  static std::uint32_t slot_of(TimerId id) {
    return static_cast<std::uint32_t>(id.value());
  }
  static std::uint32_t generation_of(TimerId id) {
    return static_cast<std::uint32_t>(id.value() >> 32);
  }

  [[nodiscard]] Slot* live_slot(TimerId id);
  [[nodiscard]] const Slot* live_slot(TimerId id) const;
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);

  /// Files an armed slot into the strategy's index structure and maintains
  /// next_due_ plus the notification machinery.
  void index_timer(std::uint32_t slot_index);
  /// Fires every due timer; loops until nothing with deadline <= now
  /// remains (callbacks may arm new timers).
  void dispatch();
  /// Strategy-specific: moves every live entry with deadline <= now into
  /// `out` (unsorted; stale entries already dropped).
  void collect_due(util::SimTime now, std::vector<Entry>& out);
  /// Recomputes next_due_ (a lower bound on the earliest live deadline)
  /// and re-arms the strategy's notification event when needed.
  void refresh_notification();

  // -- wheel internals --
  void wheel_file(const Entry& entry);
  void wheel_collect_due(std::int64_t now_ms, std::vector<Entry>& out);
  /// Refiles every live entry of `from` into the wheel (stale ones drop),
  /// handing the vector's capacity back when it ends up empty.
  void wheel_refile_live(std::vector<Entry>& from);
  /// Moves the entries of wheel level `level`, slot `slot` down one level
  /// (dropping stale ones), clearing its occupancy bit.
  void wheel_cascade(int level, int slot);
  /// Advances the cursor to `t`, cascading any slot window the move enters
  /// mid-window (the scans assume entered windows were cascaded at entry).
  void wheel_advance_to(std::int64_t t);
  /// Runs every cascade owed when wheel time reaches `t` (a multiple of 64).
  void wheel_cascade_at(std::int64_t t);
  /// Next instant >= wheel_time_ at which a filed entry can surface: the
  /// first occupied slot start past the cursor (exact for level 0), a
  /// rotation boundary owed to wrapped bits, or the overflow refile
  /// boundary; max() when the wheel is empty. Shared by the due-collect
  /// jump and the notification hint so the two walks cannot diverge.
  [[nodiscard]] std::int64_t wheel_next_surfacing() const;
  /// wheel_next_surfacing() combined with any immediately-due arms — the
  /// lower bound the notification event is scheduled at.
  [[nodiscard]] std::int64_t wheel_next_due_hint() const;

  [[nodiscard]] bool entry_live(const Entry& entry) const {
    const Slot& slot = slots_[entry.slot];
    return slot.armed && slot.seq == entry.seq;
  }

  Simulator& simulator_;
  TimerConfig config_;

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::uint64_t next_seq_ = 0;
  std::size_t armed_ = 0;
  std::uint64_t fired_ = 0;
  std::uint64_t events_scheduled_ = 0;

  /// Lower bound on the earliest live deadline (max() when none): the
  /// poll() fast path.
  util::SimTime next_due_ = util::SimTime::max();

  // kEvents + kLazy: lazy-deletion min-heap of (deadline, seq) entries.
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;

  // kWheel: per-level slot lists + occupancy bitmaps. wheel_time_ is the
  // instant up to which dues have been collected (entries with deadline <
  // wheel_time_ are gone); due_now_ catches arms at the current instant.
  std::vector<std::vector<Entry>> wheel_;  // kLevels * kSlots, flattened
  std::uint64_t bitmap_[kLevels] = {};
  std::int64_t wheel_time_ = 0;
  std::vector<Entry> overflow_;
  std::vector<Entry> due_now_;

  // Notification machinery: kWheel keeps one event at next_due_; kLazy
  // keeps one self-rescheduling sweep tick while timers are armed.
  EventId notify_event_ = EventId::invalid();
  util::SimTime notify_time_ = util::SimTime::max();
  EventId sweep_event_ = EventId::invalid();

  std::vector<Entry> scratch_;  ///< due-collection buffer (reused)
  /// Due set under dispatch, drained in (deadline, seq) order. Callbacks
  /// that arm already-due timers (deadline-anchored chain catch-up) feed
  /// them straight in here, so they still fire in global deadline order.
  std::priority_queue<Entry, std::vector<Entry>, Later> due_heap_;
  bool dispatching_ = false;
  util::SimTime dispatch_now_ = util::SimTime::zero();
};

}  // namespace p2ps::sim
