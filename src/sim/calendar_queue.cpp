#include "sim/calendar_queue.hpp"

#include <algorithm>
#include <array>
#include <cstddef>

namespace p2ps::sim {

namespace {
constexpr std::size_t kMinBuckets = 4;
constexpr std::size_t kWidthSample = 32;
}  // namespace

CalendarQueue::CalendarQueue(util::SimTime initial_width, std::size_t initial_buckets)
    : width_(initial_width), current_period_start_(util::SimTime::zero()) {
  P2PS_REQUIRE(initial_width > util::SimTime::zero());
  P2PS_REQUIRE(initial_buckets >= 1);
  buckets_.resize(std::max(initial_buckets, kMinBuckets));
}

std::size_t CalendarQueue::bucket_index(util::SimTime t) const {
  const auto day = static_cast<std::uint64_t>(t.as_millis() / width_.as_millis());
  return static_cast<std::size_t>(day % buckets_.size());
}

void CalendarQueue::insert_sorted(Bucket& bucket, const CalendarEntry& entry) {
  // Descending order: the bucket's minimum lives at the back for O(1) pop.
  const auto position = std::lower_bound(
      bucket.begin(), bucket.end(), entry,
      [](const CalendarEntry& a, const CalendarEntry& b) { return b < a; });
  bucket.insert(position, entry);
}

void CalendarQueue::push(CalendarEntry entry) {
  P2PS_REQUIRE(entry.time >= util::SimTime::zero());
  insert_sorted(buckets_[bucket_index(entry.time)], entry);
  ++size_;
  // An entry scheduled before the dequeue cursor rewinds it (rare: a DES
  // never schedules into the past, but the structure stays general).
  if (entry.time < current_period_start_) {
    const std::int64_t day = entry.time.as_millis() / width_.as_millis();
    current_period_start_ = util::SimTime::millis(day * width_.as_millis());
    current_bucket_ = bucket_index(entry.time);
  }
  // Keep the resize re-anchor invariant: last_popped_ never exceeds any
  // queued entry's time. A peek-style pop-and-reinsert (the simulator's
  // run_until horizon check) advances last_popped_ to the reinserted
  // entry; without the clamp, a later resize would re-anchor the cursor
  // past entries scheduled earlier than that and pop them out of order.
  if (entry.time < last_popped_) last_popped_ = entry.time;
  // Grow (doubling) is the moment the entry population has genuinely
  // changed regime, so it re-estimates the width.
  if (size_ > 2 * buckets_.size()) resize(buckets_.size() * 2, true);
}

std::optional<CalendarEntry> CalendarQueue::pop() {
  if (size_ == 0) return std::nullopt;

  // Scan one full rotation of the calendar from the cursor.
  std::size_t bucket = current_bucket_;
  util::SimTime period_start = current_period_start_;
  for (std::size_t scanned = 0; scanned < buckets_.size(); ++scanned) {
    const Bucket& candidate = buckets_[bucket];
    if (!candidate.empty() && candidate.back().time < period_start + width_) {
      CalendarEntry entry = candidate.back();
      buckets_[bucket].pop_back();
      --size_;
      current_bucket_ = bucket;
      current_period_start_ = period_start;
      last_popped_ = entry.time;
      if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 2) {
        // Shrink keeps the current width: pop-side shrinks fire far more
        // often than grows, and re-sampling the width on each one is the
        // estimation cost that made the calendar trail the heap.
        resize(std::max(kMinBuckets, buckets_.size() / 2), false);
      }
      return entry;
    }
    bucket = (bucket + 1) % buckets_.size();
    period_start += width_;
  }

  // Sparse region: no entry within one rotation — jump straight to the
  // global minimum and realign the cursor there.
  const Bucket* best_bucket = nullptr;
  std::size_t best_index = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i].empty()) continue;
    if (best_bucket == nullptr || buckets_[i].back() < best_bucket->back()) {
      best_bucket = &buckets_[i];
      best_index = i;
    }
  }
  P2PS_CHECK(best_bucket != nullptr);
  CalendarEntry entry = best_bucket->back();
  buckets_[best_index].pop_back();
  --size_;
  const std::int64_t day = entry.time.as_millis() / width_.as_millis();
  current_period_start_ = util::SimTime::millis(day * width_.as_millis());
  current_bucket_ = best_index;
  last_popped_ = entry.time;
  return entry;
}

void CalendarQueue::clear() {
  for (Bucket& bucket : buckets_) bucket.clear();
  size_ = 0;
  current_bucket_ = 0;
  current_period_start_ = util::SimTime::zero();
  last_popped_ = util::SimTime::zero();
}

util::SimTime CalendarQueue::estimate_width() const {
  // Classic heuristic: size buckets to roughly three times the average gap
  // between imminent events, from a small fixed-size (stack) sample — no
  // heap allocation on the resize path.
  std::array<util::SimTime, kWidthSample> sample;
  std::size_t count = 0;
  for (const Bucket& bucket : buckets_) {
    for (const CalendarEntry& entry : bucket) {
      sample[count++] = entry.time;
      if (count >= kWidthSample) break;
    }
    if (count >= kWidthSample) break;
  }
  if (count < 2) return width_;
  std::sort(sample.begin(), sample.begin() + static_cast<std::ptrdiff_t>(count));
  const std::int64_t span =
      sample[count - 1].as_millis() - sample[0].as_millis();
  const std::int64_t gap = span / static_cast<std::int64_t>(count - 1);
  return util::SimTime::millis(std::max<std::int64_t>(1, 3 * gap));
}

void CalendarQueue::resize(std::size_t new_bucket_count, bool reestimate_width) {
  ++resizes_;
  // Sample while the entries are still bucketed (the pre-tuning code
  // estimated after buckets_ had been moved from, so it always saw an
  // empty calendar and the width never actually adapted).
  if (reestimate_width) width_ = estimate_width();
  std::vector<Bucket> old = std::move(buckets_);
  buckets_.assign(new_bucket_count, Bucket{});
  size_ = 0;
  // Re-anchor the cursor at the last popped time.
  const std::int64_t day = last_popped_.as_millis() / width_.as_millis();
  current_period_start_ = util::SimTime::millis(day * width_.as_millis());
  current_bucket_ = bucket_index(last_popped_);
  for (Bucket& bucket : old) {
    for (const CalendarEntry& entry : bucket) {
      insert_sorted(buckets_[bucket_index(entry.time)], entry);
      ++size_;
    }
  }
}

}  // namespace p2ps::sim
