#include "sim/event_list.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace p2ps::sim {

namespace {
// Min-heap comparator: std::push_heap/pop_heap build a max-heap, so the
// "greater" relation puts the least (time, seq) entry at the front.
bool later(const CalendarEntry& a, const CalendarEntry& b) { return b < a; }
}  // namespace

void HeapEventList::push(const CalendarEntry& entry) {
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), later);
}

std::optional<CalendarEntry> HeapEventList::pop() {
  if (heap_.empty()) return std::nullopt;
  std::pop_heap(heap_.begin(), heap_.end(), later);
  const CalendarEntry entry = heap_.back();
  heap_.pop_back();
  return entry;
}

std::string_view to_string(EventListKind kind) {
  switch (kind) {
    case EventListKind::kBinaryHeap: return "heap";
    case EventListKind::kCalendarQueue: return "calendar";
  }
  P2PS_CHECK_MSG(false, "unknown event-list kind");
  return {};
}

std::optional<EventListKind> parse_event_list_kind(std::string_view name) {
  if (name == "heap") return EventListKind::kBinaryHeap;
  if (name == "calendar") return EventListKind::kCalendarQueue;
  return std::nullopt;
}

std::unique_ptr<EventList> make_event_list(EventListKind kind) {
  switch (kind) {
    case EventListKind::kBinaryHeap: return std::make_unique<HeapEventList>();
    case EventListKind::kCalendarQueue:
      return std::make_unique<CalendarEventList>();
  }
  P2PS_CHECK_MSG(false, "unknown event-list kind");
  return nullptr;
}

}  // namespace p2ps::sim
