// Discrete-event simulation core.
//
// This is the substrate on which the whole reproduction runs: peers,
// sessions, timers and (in the message-level engine) network deliveries are
// all events on one totally-ordered timeline. Determinism guarantees:
//   * events fire in nondecreasing time order;
//   * events scheduled for the same instant fire in FIFO scheduling order;
//   * cancellation is O(1) and safe from inside callbacks.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/assert.hpp"
#include "util/sim_time.hpp"
#include "util/strong_id.hpp"

namespace p2ps::sim {

struct EventIdTag {};
using EventId = util::StrongId<EventIdTag>;

/// Single-threaded discrete-event simulator with a virtual clock.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Starts at zero.
  [[nodiscard]] util::SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (must not be in the past).
  EventId schedule_at(util::SimTime t, Callback cb);

  /// Schedules `cb` after `delay` (must be non-negative).
  EventId schedule_after(util::SimTime delay, Callback cb);

  /// Cancels a pending event. Returns true if the event was still pending.
  /// Safe to call with already-fired or already-cancelled ids.
  bool cancel(EventId id);

  /// Returns true if the event is still pending.
  [[nodiscard]] bool pending(EventId id) const { return callbacks_.contains(id); }

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending_count() const { return callbacks_.size(); }

  /// Executes the next event, if any. Returns false when the queue is empty.
  bool step();

  /// Runs until no events remain (or `max_events` fired). Returns the number
  /// of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs all events with time <= `t`, then advances the clock to exactly
  /// `t`. Returns the number of events executed.
  std::size_t run_until(util::SimTime t);

  /// Total events executed over the simulator's lifetime.
  [[nodiscard]] std::uint64_t executed_count() const { return executed_; }

  /// Drops all pending events without executing them.
  void clear();

 private:
  struct Entry {
    util::SimTime time;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    EventId id;
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Pops entries until one with a live callback is at the top.
  void skim_cancelled();

  util::SimTime now_ = util::SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_map<EventId, Callback> callbacks_;
};

/// Self-rescheduling periodic callback, e.g. hourly metric sampling.
///
/// The callback fires first at `start`, then every `period` until `stop()`
/// is called or the simulator runs out of other events and `run_until`'s
/// horizon passes.
class Periodic {
 public:
  /// Ties the timer to `simulator`, which must outlive this object.
  Periodic(Simulator& simulator, util::SimTime start, util::SimTime period,
           std::function<void(util::SimTime)> on_tick);
  ~Periodic() { stop(); }
  Periodic(const Periodic&) = delete;
  Periodic& operator=(const Periodic&) = delete;

  void stop();
  [[nodiscard]] bool running() const { return running_; }

 private:
  void arm(util::SimTime at);

  Simulator& simulator_;
  util::SimTime period_;
  std::function<void(util::SimTime)> on_tick_;
  EventId current_ = EventId::invalid();
  bool running_ = true;
};

}  // namespace p2ps::sim
