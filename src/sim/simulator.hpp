// Discrete-event simulation core.
//
// This is the substrate on which the whole reproduction runs: peers,
// sessions, timers and (in the message-level engine) network deliveries are
// all events on one totally-ordered timeline. Determinism guarantees:
//   * events fire in nondecreasing time order;
//   * events scheduled for the same instant fire in FIFO scheduling order;
//   * cancellation is O(1) and safe from inside callbacks.
//
// The engine is allocation-free on the hot path: pending callbacks live in
// a slab with an intrusive free list (no per-event heap allocation for
// small callbacks, no hashing), addressed by generation-tagged EventIds so
// schedule / cancel / pending are all O(1). The event list itself is
// pluggable — a binary heap by default, or the Brown-1988 calendar queue
// for very large event populations — with identical ordering semantics
// either way (see sim/event_list.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "sim/event_list.hpp"
#include "sim/inplace_function.hpp"
#include "util/assert.hpp"
#include "util/sim_time.hpp"
#include "util/strong_id.hpp"

namespace p2ps::sim {

struct EventIdTag {};

/// Generation-tagged event handle: the low 32 bits address a slab slot, the
/// high 32 bits carry that slot's generation at scheduling time. The
/// generation bumps every time a slot is released (fire, cancel, clear), so
/// a stale id can never alias a newer event occupying the same slot.
using EventId = util::StrongId<EventIdTag>;

/// Single-threaded discrete-event simulator with a virtual clock.
class Simulator {
 public:
  using Callback = InplaceCallback;

  explicit Simulator(EventListKind event_list = EventListKind::kBinaryHeap);
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Which event-list backend this simulator runs on.
  [[nodiscard]] EventListKind event_list_kind() const { return queue_->kind(); }

  /// Current simulated time. Starts at zero.
  [[nodiscard]] util::SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (must not be in the past).
  EventId schedule_at(util::SimTime t, Callback cb);

  /// Schedules `cb` after `delay` (must be non-negative).
  EventId schedule_after(util::SimTime delay, Callback cb);

  /// schedule_at for events owned by the timer subsystem (TimerService
  /// dedicated events, wheel notifications, lazy sweep ticks). Identical
  /// semantics; the tag only feeds the timer/non-timer split of the
  /// pending-event accounting below.
  EventId schedule_timer_at(util::SimTime t, Callback cb);

  /// Cancels a pending event. Returns true if the event was still pending.
  /// Safe to call with already-fired, already-cancelled or pre-clear() ids.
  bool cancel(EventId id);

  /// Returns true if the event is still pending.
  [[nodiscard]] bool pending(EventId id) const;

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending_count() const { return live_; }

  /// Largest pending_count() ever reached over the simulator's lifetime
  /// (not reset by clear()). The headline lazy-arrival metric: the eager
  /// arrival build made this ~population-sized at t=0.
  [[nodiscard]] std::size_t peak_pending_count() const { return peak_live_; }

  /// How many of the events pending at the peak_pending_count() instant
  /// were timer-tagged (schedule_timer_at) — the timer vs non-timer split
  /// of the peak. This share is what the wheel/lazy timer strategies
  /// collapse.
  [[nodiscard]] std::size_t peak_pending_timers() const {
    return peak_live_timers_;
  }

  /// Executes the next event, if any. Returns false when the queue is empty.
  bool step();

  /// Runs until no events remain (or `max_events` fired). Returns the number
  /// of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs all events with time <= `t`, then advances the clock to exactly
  /// `t`. Returns the number of events executed.
  std::size_t run_until(util::SimTime t);

  /// Time of the earliest live (non-cancelled) pending event, or nullopt
  /// when none remain. Exact on both backends: cancelled residue is popped
  /// and discarded until a live entry surfaces, which is then *staged* in a
  /// one-entry buffer in front of the backend — not pushed back — so the
  /// conservative-lookahead probe the shard runner issues once per shard
  /// per window (sim/shard_runner.hpp) costs zero backend operations when
  /// repeated, and run_until's beyond-horizon stop costs no re-push.
  [[nodiscard]] std::optional<util::SimTime> next_event_time();

  /// Total events executed over the simulator's lifetime.
  [[nodiscard]] std::uint64_t executed_count() const { return executed_; }

  /// Drops all pending events without executing them and resets the event
  /// list (including any backend dequeue-cursor state). Every EventId
  /// issued before clear() is invalidated: cancel() and pending() on such
  /// ids safely return false. The clock and executed_count() are kept.
  void clear();

 private:
  /// One slab slot: the callback of a pending event, or a free-list link.
  struct Slot {
    Callback cb;                     // engaged iff the slot holds a pending event
    std::uint32_t generation = 0;    // bumped on every release
    std::uint32_t next_free = kNoSlot;
    bool timer = false;              // scheduled via schedule_timer_at
  };

  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  static EventId pack(std::uint32_t slot, std::uint32_t generation) {
    return EventId{(static_cast<std::uint64_t>(generation) << 32) | slot};
  }
  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id.value());
  }
  static std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id.value() >> 32);
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);

  /// Returns the least live entry without consuming it, staging it in
  /// `staged_` (skipping cancelled residue); nullptr when exhausted. The
  /// staging invariant: whenever `staged_` is engaged it compares <= every
  /// entry in `queue_`, so the staged entry IS the queue minimum and
  /// repeated peeks are backend-free.
  const CalendarEntry* peek_live();

  /// Pops entries until a live one surfaces (skipping cancelled residue);
  /// nullopt when the queue is exhausted.
  std::optional<CalendarEntry> pop_live();

  /// Fires `entry`, whose slot has already been verified live.
  void execute(const CalendarEntry& entry);

  EventId schedule_impl(util::SimTime t, Callback cb, bool timer);

  util::SimTime now_ = util::SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::size_t live_timers_ = 0;
  std::size_t peak_live_ = 0;
  std::size_t peak_live_timers_ = 0;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  /// One-entry stage in front of the backend (see peek_live). Lets the
  /// shard runner's per-window next_event_time probe and run_until's
  /// beyond-horizon stop avoid the pop-then-push round trip that used to
  /// dominate window mechanics at hundreds of thousands of windows.
  std::optional<CalendarEntry> staged_;
  std::unique_ptr<EventList> queue_;
};

/// Self-rescheduling periodic callback, e.g. hourly metric sampling.
///
/// The callback fires first at `start`, then every `period` until `stop()`
/// is called or the simulator runs out of other events and `run_until`'s
/// horizon passes.
class Periodic {
 public:
  /// Ties the timer to `simulator`, which must outlive this object.
  Periodic(Simulator& simulator, util::SimTime start, util::SimTime period,
           std::function<void(util::SimTime)> on_tick);
  ~Periodic() { stop(); }
  Periodic(const Periodic&) = delete;
  Periodic& operator=(const Periodic&) = delete;

  void stop();
  [[nodiscard]] bool running() const { return running_; }

 private:
  void arm(util::SimTime at);

  Simulator& simulator_;
  util::SimTime period_;
  std::function<void(util::SimTime)> on_tick_;
  EventId current_ = EventId::invalid();
  bool running_ = true;
};

}  // namespace p2ps::sim
